"""DurableJobStore units: persisted state machine, leases, recovery rules.

Two store instances opened on one snapshot path stand in for two server
processes — the same protocol the subprocess suites exercise end-to-end,
tested here at the registry level where every interleaving is cheap to
arrange.
"""

from __future__ import annotations

import pytest

from repro.jobs import (
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    DurableJobStore,
    JobStateError,
)
from repro.store.database import Database

KEY = "a" * 64
OTHER_KEY = "b" * 64
PARAMS = {"min_support": 5}


class Clock:
    """A controllable clock: leases expire when the test says so."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        self.now += 0.001  # strictly increasing, like time.time
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "db.json"


def make_store(store_path, clock, worker_id) -> DurableJobStore:
    store = DurableJobStore(
        Database(store_path), worker_id=worker_id, clock=clock, lease_seconds=10.0
    )
    # Unit tests interleave cross-'process' writes and reads back-to-back;
    # the cancel-poll refresh throttle would hide writes made inside it.
    store.poll_refresh_seconds = 0.0
    return store


@pytest.fixture
def store(store_path, clock):
    return make_store(store_path, clock, "alpha")


def second_store(store_path, clock, worker_id="beta") -> DurableJobStore:
    """Another 'process': a fresh Database over the same snapshot."""
    return make_store(store_path, clock, worker_id)


class TestPersistedLifecycle:
    def test_every_transition_survives_reopen(self, store, store_path, clock):
        job, created = store.open_job("santander", PARAMS, KEY)
        assert created and job.state == QUEUED
        assert second_store(store_path, clock).get(job.job_id).state == QUEUED

        store.mark_running(job.job_id)
        assert second_store(store_path, clock).get(job.job_id).state == RUNNING

        store.mark_succeeded(job.job_id, result_key=KEY)
        reopened = second_store(store_path, clock).get(job.job_id)
        assert reopened.state == SUCCEEDED
        assert reopened.progress == 1.0
        assert reopened.result_key == KEY

    def test_failed_error_round_trips_through_snapshot(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        try:
            raise ValueError("sensor exploded")
        except ValueError as exc:
            store.mark_failed(job.job_id, exc)
        error = second_store(store_path, clock).get(job.job_id).error
        assert error.type == "ValueError"
        assert error.message == "sensor exploded"
        assert "sensor exploded" in error.traceback

    def test_terminal_states_stay_terminal(self, store):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        store.mark_succeeded(job.job_id)
        with pytest.raises(JobStateError):
            store.mark_running(job.job_id)
        with pytest.raises(JobStateError):
            store.request_cancel(job.job_id)

    def test_in_memory_database_keeps_semantics(self, clock):
        # No snapshot path: still a registry, just process-local.
        store = DurableJobStore(Database(), worker_id="solo", clock=clock)
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        final = store.mark_succeeded(job.job_id, result_key=KEY)
        assert final.state == SUCCEEDED and final.worker_id == "solo"


class TestClaiming:
    def test_claim_stamps_worker_and_lease(self, store, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        claimed = store.mark_running(job.job_id)
        assert claimed.worker_id == "alpha"
        assert claimed.attempt == 1
        assert claimed.lease_expires_at == pytest.approx(clock.now, abs=11.0)
        assert claimed.lease_expires_at > clock.now

    def test_cross_process_dedup(self, store, store_path, clock):
        job, created = store.open_job("santander", PARAMS, KEY)
        other = second_store(store_path, clock)
        deduped, created2 = other.open_job("santander", PARAMS, KEY)
        assert created and not created2
        assert deduped.job_id == job.job_id

    def test_only_one_process_claims(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        other = second_store(store_path, clock)
        assert other.claim_next().job_id == job.job_id
        # The loser sees the claim and gets nothing.
        assert store.claim_next() is None
        with pytest.raises(JobStateError):
            store.mark_running(job.job_id)

    def test_claim_next_is_fifo(self, store):
        first, _ = store.open_job("santander", PARAMS, KEY)
        second, _ = store.open_job("santander", PARAMS, OTHER_KEY)
        assert store.claim_next().job_id == first.job_id
        assert store.claim_next().job_id == second.job_id
        assert store.claim_next() is None

    def test_foreign_worker_cannot_finish(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        other = second_store(store_path, clock)
        other.claim_next()
        with pytest.raises(JobStateError, match="lease lost"):
            store.mark_succeeded(job.job_id, result_key=KEY)
        with pytest.raises(JobStateError, match="lease lost"):
            store.mark_failed(job.job_id, RuntimeError("late"))

    def test_stale_attempt_of_same_worker_cannot_clobber(self, store, clock):
        """Executor and polling worker share one worker_id: the attempt
        token is what keeps a stale thread of the *same process* from
        finishing (or progress-poisoning) a re-claimed job."""
        job, _ = store.open_job("santander", PARAMS, KEY)
        first = store.mark_running(job.job_id)  # attempt 1 (stale thread)
        clock.advance(11.0)
        store.reclaim_expired()
        second = store.mark_running(job.job_id)  # attempt 2 (fresh claim)
        assert (first.attempt, second.attempt) == (1, 2)
        # Stale thread's late writes carry attempt=1 and are refused.
        with pytest.raises(JobStateError, match="lease lost"):
            store.mark_failed(job.job_id, RuntimeError("late"), attempt=1)
        lease_before = store.get(job.job_id).lease_expires_at
        clock.advance(5.0)
        store.set_progress(job.job_id, 1, 2, attempt=1)  # ignored tick
        assert store.get(job.job_id).progress == 0.0
        assert store.get(job.job_id).lease_expires_at == lease_before
        # The live claim's writes (attempt 2) go through.
        store.set_progress(job.job_id, 1, 2, attempt=2)
        assert store.get(job.job_id).progress == 0.5
        store.mark_succeeded(job.job_id, result_key=KEY, attempt=2)
        assert store.get(job.job_id).state == SUCCEEDED

    def test_stale_winner_cannot_clobber_newer_attempt(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        clock.advance(11.0)  # lease lapses
        other = second_store(store_path, clock)
        assert [j.job_id for j in other.reclaim_expired()] == [job.job_id]
        clock.advance(1.0)  # past the requeue backoff window
        reclaimed = other.claim_next()
        assert reclaimed.attempt == 2 and reclaimed.worker_id == "beta"
        # The original worker wakes up and tries to publish: refused.
        with pytest.raises(JobStateError, match="lease lost"):
            store.mark_succeeded(job.job_id, result_key=KEY)
        other.mark_succeeded(job.job_id, result_key=KEY)
        assert store.get(job.job_id).state == SUCCEEDED


class TestLeases:
    def test_progress_renews_lease(self, store, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        claimed = store.mark_running(job.job_id)
        clock.advance(5.0)  # more than a third of the lease consumed
        store.set_progress(job.job_id, 1, 4)
        renewed = store.get(job.job_id)
        assert renewed.lease_expires_at > claimed.lease_expires_at

    def test_reclaim_requeues_only_lapsed(self, store, clock):
        expired, _ = store.open_job("santander", PARAMS, KEY)
        live, _ = store.open_job("santander", PARAMS, OTHER_KEY)
        store.mark_running(expired.job_id)
        clock.advance(11.0)
        store.mark_running(live.job_id)  # fresh lease
        requeued = store.reclaim_expired()
        assert [j.job_id for j in requeued] == [expired.job_id]
        assert store.get(expired.job_id).state == QUEUED
        assert store.get(expired.job_id).progress == 0.0
        assert store.get(live.job_id).state == RUNNING

    def test_reclaim_honours_pending_cancellation(self, store, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        store.request_cancel(job.job_id)
        clock.advance(11.0)
        assert store.reclaim_expired() == []  # cancelled, not requeued
        assert store.get(job.job_id).state == CANCELLED

    def test_lease_counters(self, store, clock):
        a, _ = store.open_job("santander", PARAMS, KEY)
        b, _ = store.open_job("santander", PARAMS, OTHER_KEY)
        store.mark_running(a.job_id)
        clock.advance(11.0)
        store.mark_running(b.job_id)
        counters = store.counters()
        assert counters["running"] == 2
        assert counters["leases"] == {"active": 1, "expired": 1}

    def test_cancel_flag_crosses_processes(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        other = second_store(store_path, clock)
        other.claim_next()
        store.request_cancel(job.job_id)
        assert other.cancel_requested(job.job_id)
        other.mark_cancelled(job.job_id)
        assert store.get(job.job_id).state == CANCELLED


class TestRecovery:
    def test_requeues_lapsed_running_jobs(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        clock.advance(11.0)
        fresh = second_store(store_path, clock, worker_id="recoverer")
        summary = fresh.recover()
        assert summary["requeued"] == [job.job_id]
        assert summary["queued"] == [job.job_id]
        assert fresh.get(job.job_id).state == QUEUED

    def test_leaves_live_leases_alone(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        fresh = second_store(store_path, clock, worker_id="recoverer")
        summary = fresh.recover()
        assert summary["requeued"] == []
        assert fresh.get(job.job_id).state == RUNNING

    def test_republishes_succeeded_jobs_with_results(self, store, store_path, clock):
        database = store.database
        database.collection("cap_results").insert_one({"key": KEY, "result": {}})
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        store.mark_succeeded(job.job_id, result_key=KEY)
        summary = second_store(store_path, clock).recover()
        assert summary["republished"] == [job.job_id]
        assert summary["requeued"] == []

    def test_reports_succeeded_jobs_missing_their_result(
        self, store, store_path, clock
    ):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        store.mark_succeeded(job.job_id, result_key=KEY)  # result never stored
        summary = second_store(store_path, clock).recover()
        assert summary["missing_results"] == [job.job_id]

    def test_queued_jobs_reported_for_rescheduling(self, store, store_path, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        summary = second_store(store_path, clock).recover()
        assert summary["queued"] == [job.job_id]


class TestRegistryViews:
    def test_list_merges_other_processes_jobs(self, store, store_path, clock):
        mine, _ = store.open_job("santander", PARAMS, KEY)
        other = second_store(store_path, clock)
        theirs, _ = other.open_job("santander", PARAMS, OTHER_KEY)
        assert [j.job_id for j in store.list()] == [mine.job_id, theirs.job_id]
        assert [j.job_id for j in store.list(QUEUED)] == [mine.job_id, theirs.job_id]

    def test_sequences_are_globally_unique(self, store, store_path, clock):
        a, _ = store.open_job("santander", PARAMS, KEY)
        other = second_store(store_path, clock)
        b, _ = other.open_job("santander", PARAMS, OTHER_KEY)
        c, _ = store.open_job("santander", PARAMS, "c" * 64)
        assert a.job_id != b.job_id != c.job_id
        assert [a.sequence, b.sequence, c.sequence] == [1, 2, 3]

    def test_progress_is_monotone_per_attempt(self, store, clock):
        job, _ = store.open_job("santander", PARAMS, KEY)
        store.mark_running(job.job_id)
        store.set_progress(job.job_id, 3, 8)
        store.set_progress(job.job_id, 2, 8)  # late tick: ignored
        assert store.get(job.job_id).progress == pytest.approx(3 / 8)
        clock.advance(11.0)
        store.reclaim_expired()
        assert store.get(job.job_id).progress == 0.0  # new attempt starts over
        store.mark_running(job.job_id)
        store.set_progress(job.job_id, 1, 8)
        assert store.get(job.job_id).progress == pytest.approx(1 / 8)

    def test_persist_removal_survives_refresh(self, store, store_path, clock):
        """A deletion pushed through persist_removal is the snapshot's new
        truth: a peer's write no longer resurrects the document."""
        results = store.database.collection("cap_results")
        results.insert_one({"key": KEY, "result": {}})
        job, _ = store.open_job("santander", PARAMS, KEY)  # persists everything
        assert store.persist_removal("cap_results", {"key": KEY}) == 1
        other = second_store(store_path, clock)
        other.open_job("santander", PARAMS, OTHER_KEY)  # peer write
        store.refresh()
        assert results.find_one({"key": KEY}) is None  # not resurrected
        assert other.database.collection("cap_results").find_one({"key": KEY}) is None

    def test_terminal_eviction_keeps_result_key_mapping(self, store_path, clock):
        store = DurableJobStore(
            Database(store_path), worker_id="alpha", clock=clock,
            lease_seconds=10.0, terminal_capacity=1,
        )
        finished = []
        for index in range(3):
            job, _ = store.open_job("santander", PARAMS, f"{index:064d}")
            store.mark_running(job.job_id)
            store.mark_succeeded(job.job_id, result_key=job.key)
            finished.append(job)
        store.open_job("santander", PARAMS, "z" * 64)  # triggers the prune
        evicted = finished[0]
        assert store.get(evicted.job_id) is None
        assert store.evicted_result_key(evicted.job_id) == evicted.key
        assert store.evicted_result_key("job-9999-nope") is None
