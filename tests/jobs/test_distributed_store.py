"""Distributed-registry units: shard sub-jobs, release, backoff, dead-letter.

The shard protocol at the store level, where every interleaving is cheap to
arrange: two :class:`DurableJobStore` instances on one snapshot path stand
in for two server processes, and a controllable clock lapses leases and
backoff windows on demand.  The subprocess crash matrix
(``tests/server/test_distributed_jobs.py``) proves the same rules end to
end; here each rule is pinned in isolation.
"""

from __future__ import annotations

import pytest

from repro.jobs import (
    ATTEMPTS_EXHAUSTED,
    CANCELLED,
    FAILED,
    KIND_MERGE,
    KIND_MINE,
    KIND_SHARD,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    DurableJobStore,
    JobStateError,
)
from repro.store.database import Database

KEY = "a" * 64
PARAMS = {"min_support": 5}
UNITS = [
    [{"component": 0, "seeds": ["s1"], "first_rank": 0}],
    [{"component": 1, "seeds": ["s2"], "first_rank": 0}],
]
OUTPUT = [{"tag": [0, 0], "caps": []}]


class Clock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        self.now += 0.001
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "db.json"


def make_store(store_path, clock, worker_id, **kwargs) -> DurableJobStore:
    store = DurableJobStore(
        Database(store_path),
        worker_id=worker_id,
        clock=clock,
        lease_seconds=10.0,
        **kwargs,
    )
    store.poll_refresh_seconds = 0.0
    return store


@pytest.fixture
def store(store_path, clock):
    return make_store(store_path, clock, "w1")


def plan(store, *, units=UNITS, generation=0):
    """Open + claim + plan one distributed parent; returns the parent id."""
    job, created = store.open_job("ds", PARAMS, KEY, distributed=True)
    assert created
    claimed = store.claim_next()
    assert claimed.job_id == job.job_id
    store.finish_planning(
        job.job_id, claimed.attempt, shard_units=units, mode="search",
        horizon=4, generation=generation,
    )
    return job.job_id


class TestPlanning:
    def test_planned_parent_is_running_lease_less(self, store):
        parent_id = plan(store)
        parent = store.get(parent_id)
        assert parent.state == RUNNING
        assert parent.planned
        assert parent.worker_id is None
        assert parent.lease_expires_at is None

    def test_children_are_deterministic_and_ordered(self, store):
        parent_id = plan(store)
        children = store.children(parent_id)
        assert [c.job_id for c in children] == [
            f"{parent_id}-s000", f"{parent_id}-s001", f"{parent_id}-merge",
        ]
        assert [c.kind for c in children] == [KIND_SHARD, KIND_SHARD, KIND_MERGE]
        assert [c.shard_index for c in children] == [0, 1, None]
        assert all(c.parent_id == parent_id for c in children)

    def test_dedup_ignores_shard_children_sharing_the_key(self, store):
        parent_id = plan(store)
        job, created = store.open_job("ds", PARAMS, KEY, distributed=True)
        assert not created
        assert job.job_id == parent_id
        assert job.kind == KIND_MINE

    def test_replan_after_planner_crash_is_idempotent(self, store_path, clock):
        alpha = make_store(store_path, clock, "alpha")
        beta = make_store(store_path, clock, "beta")
        job, _ = alpha.open_job("ds", PARAMS, KEY, distributed=True)
        assert alpha.claim_next().job_id == job.job_id
        # alpha "dies" mid-plan; beta reclaims the parent and replans.
        clock.advance(11.0)
        beta.refresh()
        assert [j.job_id for j in beta.reclaim_expired()] == [job.job_id]
        clock.advance(1.0)  # past the requeue backoff window
        retry = beta.claim_next()
        assert retry.job_id == job.job_id and retry.attempt == 2
        beta.finish_planning(
            job.job_id, retry.attempt, shard_units=UNITS, mode="search",
            horizon=4,
        )
        assert len(beta.children(job.job_id)) == 3  # no duplicates

    def test_stale_planner_cannot_finish(self, store, clock):
        job, _ = store.open_job("ds", PARAMS, KEY, distributed=True)
        first = store.claim_next()
        clock.advance(11.0)
        store.reclaim_expired()
        clock.advance(1.0)  # past the requeue backoff window
        second = store.claim_next()
        assert second.attempt == 2
        with pytest.raises(JobStateError):
            store.finish_planning(
                job.job_id, first.attempt, shard_units=UNITS, mode="search",
                horizon=4,
            )

    def test_plan_workers_round_trips(self, store):
        job, _ = store.open_job("ds", PARAMS, KEY, distributed=True,
                                plan_workers=7)
        assert store.plan_workers(job.job_id) == 7


class TestShardLifecycle:
    def test_merge_gated_until_every_shard_succeeds(self, store):
        parent_id = plan(store)
        first = store.claim_next()
        assert first.job_id == f"{parent_id}-s000"
        second = store.claim_next()
        assert second.job_id == f"{parent_id}-s001"
        assert store.claim_next() is None  # merge not claimable yet
        store.complete_shard(first.job_id, first.attempt, OUTPUT)
        assert store.claim_next() is None  # one shard still running
        store.complete_shard(second.job_id, second.attempt, OUTPUT)
        merge = store.claim_next()
        assert merge.job_id == f"{parent_id}-merge"

    def test_merge_success_promotes_parent_with_result_key(self, store):
        parent_id = plan(store)
        for _ in range(2):
            shard = store.claim_next()
            store.complete_shard(shard.job_id, shard.attempt, OUTPUT)
        merge = store.claim_next()
        store.mark_succeeded(merge.job_id, KEY, attempt=merge.attempt)
        store.reclaim_expired()  # resolution pass
        parent = store.get(parent_id)
        assert parent.state == SUCCEEDED
        assert parent.result_key == KEY

    def test_shard_spec_and_outputs_round_trip(self, store):
        parent_id = plan(store, generation=3)
        shard = store.claim_next()
        spec = store.shard_spec(shard.job_id)
        assert spec["units"] == UNITS[0]
        assert spec["generation"] == 3
        assert spec["parent_id"] == parent_id
        with pytest.raises(JobStateError):
            store.shard_outputs(parent_id)  # not all shards succeeded
        store.complete_shard(shard.job_id, shard.attempt, OUTPUT)
        other = store.claim_next()
        store.complete_shard(other.job_id, other.attempt, OUTPUT, 0.5)
        outputs = store.shard_outputs(parent_id)
        assert [o["shard_id"] for o in outputs] == [
            f"{parent_id}-s000", f"{parent_id}-s001",
        ]
        assert all(o["output"] == OUTPUT for o in outputs)

    def test_release_requeues_preserving_attempt(self, store):
        parent_id = plan(store)
        shard = store.claim_next()
        assert store.release(shard.job_id, shard.attempt) is True
        released = store.get(shard.job_id)
        assert released.state == QUEUED
        assert released.attempt == 1  # the attempt counter is history, kept
        assert released.not_before is None  # immediate takeover, no backoff
        retry = store.claim_next()
        assert retry.job_id == shard.job_id and retry.attempt == 2

    def test_release_of_lost_claim_is_a_noop(self, store, clock):
        plan(store)
        shard = store.claim_next()
        clock.advance(11.0)
        store.reclaim_expired()
        clock.advance(1.0)  # past the requeue backoff window
        stolen = store.claim_next()  # same shard, new attempt
        assert stolen.job_id == shard.job_id
        assert store.release(shard.job_id, shard.attempt) is False
        assert store.get(shard.job_id).state == RUNNING

    def test_release_honours_pending_cancellation(self, store):
        parent_id = plan(store)
        shard = store.claim_next()
        store.request_cancel(parent_id)
        assert store.release(shard.job_id, shard.attempt) is True
        assert store.get(shard.job_id).state == CANCELLED


class TestRetriesAndDeadLetter:
    def test_requeue_applies_exponential_backoff(self, store_path, clock):
        store = make_store(store_path, clock, "w1", backoff_base=2.0)
        plan(store)
        shard = store.claim_next()
        clock.advance(11.0)
        store.reclaim_expired()
        requeued = store.get(shard.job_id)
        assert requeued.state == QUEUED
        assert requeued.not_before is not None
        # Backoff gates polling claims until the window passes.  The other
        # shard (never attempted) is claimable immediately.
        assert store.claim_next().job_id != shard.job_id
        clock.advance(2.1)
        retry = store.claim_next()
        assert retry.job_id == shard.job_id and retry.attempt == 2

    def test_exhausted_shard_dead_letters_and_fails_parent(
        self, store_path, clock
    ):
        store = make_store(store_path, clock, "w1", max_attempts=2,
                           backoff_base=0.0)
        parent_id = plan(store)
        for expected_attempt in (1, 2):
            shard = store.claim_next()
            assert shard.job_id == f"{parent_id}-s000"
            assert shard.attempt == expected_attempt
            clock.advance(11.0)
            store.reclaim_expired()
        failed = store.get(f"{parent_id}-s000")
        assert failed.state == FAILED
        assert failed.error.type == ATTEMPTS_EXHAUSTED
        assert "2" in failed.error.message
        parent = store.get(parent_id)
        assert parent.state == FAILED
        assert f"{parent_id}-s000" in parent.error.message
        # The sibling that never ran is cancelled, not left dangling.
        sibling = store.get(f"{parent_id}-s001")
        assert sibling.state == CANCELLED
        counters = store.counters()
        assert counters["dead_lettered"] == 1
        assert counters["kinds"]["shard"] == 2

    def test_max_attempts_zero_means_unlimited(self, store_path, clock):
        store = make_store(store_path, clock, "w1", max_attempts=0,
                           backoff_base=0.0)
        plan(store)
        for expected_attempt in range(1, 8):
            shard = store.claim_next()
            if shard.job_id.endswith("-s001"):
                store.complete_shard(shard.job_id, shard.attempt, OUTPUT)
                shard = store.claim_next()
            assert shard.attempt is not None
            clock.advance(11.0)
            store.reclaim_expired()
        assert store.get(shard.job_id).state == QUEUED

    def test_whole_job_requeue_dead_letters_too(self, store_path, clock):
        # Satellite: the plain (non-distributed) requeue path shares the
        # attempts bound.
        store = make_store(store_path, clock, "w1", max_attempts=2,
                           backoff_base=0.0)
        job, _ = store.open_job("ds", PARAMS, KEY)
        for _ in range(2):
            claimed = store.claim_next()
            assert claimed.job_id == job.job_id
            clock.advance(11.0)
            store.reclaim_expired()
        final = store.get(job.job_id)
        assert final.state == FAILED
        assert final.error.type == ATTEMPTS_EXHAUSTED
        assert store.counters()["dead_lettered"] == 1


class TestCancellation:
    def test_cancel_propagates_through_the_tree(self, store):
        parent_id = plan(store)
        shard = store.claim_next()  # one shard running, one queued
        store.request_cancel(parent_id)
        assert store.cancel_requested(shard.job_id)
        queued_sibling = store.get(f"{parent_id}-s001")
        assert queued_sibling.state == CANCELLED
        # The running shard notices at its next checkpoint and cancels.
        store.mark_cancelled(shard.job_id, attempt=shard.attempt)
        store.reclaim_expired()
        assert store.get(parent_id).state == CANCELLED

    def test_failed_merge_fails_parent(self, store):
        parent_id = plan(store)
        for _ in range(2):
            shard = store.claim_next()
            store.complete_shard(shard.job_id, shard.attempt, OUTPUT)
        merge = store.claim_next()
        store.mark_failed(merge.job_id, RuntimeError("boom"),
                          attempt=merge.attempt)
        store.reclaim_expired()
        parent = store.get(parent_id)
        assert parent.state == FAILED
        assert "merge step" in parent.error.message


class TestCrossProcess:
    def test_two_stores_split_the_shards_exactly_once(self, store_path, clock):
        alpha = make_store(store_path, clock, "alpha")
        beta = make_store(store_path, clock, "beta")
        parent_id = plan(alpha)
        beta.refresh()
        first = alpha.claim_next()
        second = beta.claim_next()
        assert {first.job_id, second.job_id} == {
            f"{parent_id}-s000", f"{parent_id}-s001",
        }
        assert beta.claim_next() is None  # nothing left but the gated merge
        alpha.complete_shard(first.job_id, first.attempt, OUTPUT)
        beta.complete_shard(second.job_id, second.attempt, OUTPUT)
        merge = beta.claim_next()
        assert merge is not None and merge.kind == KIND_MERGE

    def test_recover_skips_planned_parent_but_requeues_lost_shard(
        self, store_path, clock
    ):
        alpha = make_store(store_path, clock, "alpha")
        parent_id = plan(alpha)
        shard = alpha.claim_next()
        clock.advance(11.0)
        # A second process starting fresh: the planned lease-less parent is
        # *not* an interrupted job, the lapsed shard is.
        beta = make_store(store_path, clock, "beta")
        summary = beta.recover()
        assert parent_id not in summary["requeued"]
        assert shard.job_id in summary["requeued"]
        assert beta.get(parent_id).state == RUNNING
        assert beta.get(parent_id).planned
