"""JobStore units: the state machine, progress monotonicity, dedup index."""

from __future__ import annotations

import pytest

from repro.jobs import (
    CANCELLED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    JobStateError,
    JobStore,
)
from repro.jobs.model import ensure_transition

KEY = "a" * 64
OTHER_KEY = "b" * 64
PARAMS = {"min_support": 5}


@pytest.fixture
def store() -> JobStore:
    # A deterministic, strictly increasing clock: timestamp ordering
    # assertions never depend on wall-clock resolution.
    ticks = iter(range(1, 10_000))
    return JobStore(clock=lambda: float(next(ticks)))


def open_one(store: JobStore, key: str = KEY):
    job, created = store.open_job("santander", PARAMS, key)
    assert created
    return job


class TestStateMachine:
    def test_new_job_is_queued(self, store):
        job = open_one(store)
        assert job.state == QUEUED
        assert job.progress == 0.0
        assert job.created_at is not None
        assert job.started_at is None and job.finished_at is None

    def test_happy_path_timestamps(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        store.mark_succeeded(job.job_id, result_key=KEY)
        final = store.get(job.job_id)
        assert final.state == SUCCEEDED
        assert final.created_at < final.started_at < final.finished_at
        assert final.result_key == KEY

    def test_succeeded_is_terminal(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        store.mark_succeeded(job.job_id)
        with pytest.raises(JobStateError, match="illegal job transition"):
            store.mark_running(job.job_id)
        with pytest.raises(JobStateError, match="cannot cancel"):
            store.request_cancel(job.job_id)

    def test_queued_cannot_succeed_directly(self, store):
        job = open_one(store)
        with pytest.raises(JobStateError):
            store.mark_succeeded(job.job_id)

    def test_transition_table_covers_all_states(self):
        for state in JOB_STATES:
            with pytest.raises(JobStateError):
                ensure_transition(state, QUEUED)  # nothing re-queues

    def test_unknown_job_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.mark_running("job-9999-nope")


class TestProgress:
    def test_progress_is_monotone(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        store.set_progress(job.job_id, 3, 8)
        assert store.get(job.job_id).progress == pytest.approx(3 / 8)
        store.set_progress(job.job_id, 2, 8)  # late tick: must not regress
        assert store.get(job.job_id).progress == pytest.approx(3 / 8)
        store.set_progress(job.job_id, 7, 8)
        assert store.get(job.job_id).progress == pytest.approx(7 / 8)

    def test_progress_stays_below_one_until_success(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        store.set_progress(job.job_id, 8, 8)
        assert store.get(job.job_id).progress < 1.0
        store.mark_succeeded(job.job_id)
        assert store.get(job.job_id).progress == 1.0

    def test_ticks_ignored_unless_running(self, store):
        job = open_one(store)
        store.set_progress(job.job_id, 1, 2)  # still queued
        assert store.get(job.job_id).progress == 0.0
        store.mark_running(job.job_id)
        store.mark_failed(job.job_id, ValueError("boom"))
        store.set_progress(job.job_id, 2, 2)  # after failure
        assert store.get(job.job_id).progress == 0.0

    def test_shard_counters_follow_progress(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        store.set_progress(job.job_id, 5, 12)
        snapshot = store.get(job.job_id)
        assert (snapshot.shards_done, snapshot.shards_total) == (5, 12)

    def test_shard_counters_advance_at_the_progress_cap(self, store):
        """The last shards of a big run tie at the 0.99 cap; counters must
        keep counting even though the fraction is pinned."""
        job = open_one(store)
        store.mark_running(job.job_id)
        for done in (198, 199, 200):
            store.set_progress(job.job_id, done, 200)
            assert store.get(job.job_id).shards_done == done
        assert store.get(job.job_id).progress < 1.0
        store.mark_succeeded(job.job_id)
        final = store.get(job.job_id)
        assert final.progress == 1.0 and final.shards_done == 200


class TestErrorCapture:
    def test_failure_records_structured_error(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        try:
            raise ValueError("dataset vanished")
        except ValueError as exc:
            store.mark_failed(job.job_id, exc)
        error = store.get(job.job_id).error
        assert error.type == "ValueError"
        assert error.message == "dataset vanished"
        assert "dataset vanished" in error.traceback
        assert "test_store" in error.traceback  # real traceback, not repr

    def test_error_serialises(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        store.mark_failed(job.job_id, RuntimeError("x"))
        doc = store.get(job.job_id).to_document()
        assert doc["error"]["type"] == "RuntimeError"
        assert doc["state"] == FAILED


class TestDedup:
    def test_active_job_reused(self, store):
        first, created = store.open_job("santander", PARAMS, KEY)
        second, created2 = store.open_job("santander", PARAMS, KEY)
        assert created and not created2
        assert first.job_id == second.job_id

    def test_running_job_still_dedups(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        again, created = store.open_job("santander", PARAMS, KEY)
        assert not created and again.job_id == job.job_id

    def test_finished_job_does_not_dedup(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        store.mark_succeeded(job.job_id)
        fresh, created = store.open_job("santander", PARAMS, KEY)
        assert created and fresh.job_id != job.job_id

    def test_distinct_keys_never_dedup(self, store):
        a = open_one(store, KEY)
        b = open_one(store, OTHER_KEY)
        assert a.job_id != b.job_id

    def test_cancelled_job_releases_key(self, store):
        job = open_one(store)
        store.request_cancel(job.job_id)  # queued -> cancelled immediately
        assert store.get(job.job_id).state == CANCELLED
        fresh, created = store.open_job("santander", PARAMS, KEY)
        assert created


class TestCancellation:
    def test_cancel_queued_is_immediate(self, store):
        job = open_one(store)
        cancelled = store.request_cancel(job.job_id)
        assert cancelled.state == CANCELLED
        assert cancelled.finished_at is not None

    def test_cancel_running_is_cooperative(self, store):
        job = open_one(store)
        store.mark_running(job.job_id)
        flagged = store.request_cancel(job.job_id)
        assert flagged.state == RUNNING  # still running until the checkpoint
        assert store.cancel_requested(job.job_id)
        store.mark_cancelled(job.job_id)
        assert store.get(job.job_id).state == CANCELLED

    def test_cancel_twice_is_idempotent(self, store):
        job = open_one(store)
        store.request_cancel(job.job_id)
        assert store.request_cancel(job.job_id).state == CANCELLED


class TestListing:
    def test_list_is_submission_ordered(self, store):
        ids = [open_one(store, key).job_id for key in (KEY, OTHER_KEY, "c" * 64)]
        assert [job.job_id for job in store.list()] == ids

    def test_status_filter(self, store):
        a = open_one(store, KEY)
        b = open_one(store, OTHER_KEY)
        store.mark_running(a.job_id)
        assert [j.job_id for j in store.list(RUNNING)] == [a.job_id]
        assert [j.job_id for j in store.list(QUEUED)] == [b.job_id]

    def test_unknown_status_rejected(self, store):
        with pytest.raises(JobStateError, match="unknown job status"):
            store.list("exploded")

    def test_counters(self, store):
        a = open_one(store, KEY)
        open_one(store, OTHER_KEY)
        store.mark_running(a.job_id)
        store.mark_succeeded(a.job_id)
        counts = store.counters()
        assert counts["succeeded"] == 1
        assert counts["queued"] == 1
        assert counts["total"] == 2

    def test_job_ids_are_readable(self, store):
        job = open_one(store)
        assert job.job_id.startswith("job-0001-")
        assert job.job_id.endswith(KEY[:10])


class TestTerminalRetention:
    def test_oldest_finished_jobs_evicted_beyond_capacity(self):
        store = JobStore(terminal_capacity=2)
        finished = []
        for i in range(4):
            job, _ = store.open_job("santander", PARAMS, f"{i:064d}")
            store.mark_running(job.job_id)
            store.mark_succeeded(job.job_id)
            finished.append(job.job_id)
        # A new submission triggers the prune of the oldest two.
        store.open_job("santander", PARAMS, "live" + "0" * 60)
        remaining = [job.job_id for job in store.list()]
        assert finished[0] not in remaining and finished[1] not in remaining
        assert finished[2] in remaining and finished[3] in remaining

    def test_active_jobs_never_evicted(self):
        store = JobStore(terminal_capacity=1)
        active, _ = store.open_job("santander", PARAMS, "a" * 64)
        store.mark_running(active.job_id)
        for i in range(3):
            job, _ = store.open_job("santander", PARAMS, f"{i:064d}")
            store.mark_running(job.job_id)
            store.mark_succeeded(job.job_id)
        store.open_job("santander", PARAMS, "z" * 64)
        assert store.get(active.job_id) is not None
        assert store.get(active.job_id).state == RUNNING

    def test_evicted_succeeded_jobs_keep_their_result_key(self):
        """Eviction drops metadata only: the job_id -> result_key mapping
        survives, so result links issued against the job id still resolve."""
        store = JobStore(terminal_capacity=1)
        first, _ = store.open_job("santander", PARAMS, "a" * 64)
        store.mark_running(first.job_id)
        store.mark_succeeded(first.job_id, result_key="a" * 64)
        second, _ = store.open_job("santander", PARAMS, "b" * 64)
        store.mark_running(second.job_id)
        store.mark_succeeded(second.job_id, result_key="b" * 64)
        store.open_job("santander", PARAMS, "c" * 64)  # prunes `first`
        assert store.get(first.job_id) is None
        assert store.evicted_result_key(first.job_id) == "a" * 64
        assert store.evicted_result_key(second.job_id) is None  # not evicted
        assert store.evicted_result_key("job-0000-nope") is None

    def test_evicted_failed_jobs_leave_no_mapping(self):
        store = JobStore(terminal_capacity=1)
        failed, _ = store.open_job("santander", PARAMS, "a" * 64)
        store.mark_running(failed.job_id)
        store.mark_failed(failed.job_id, RuntimeError("boom"))
        ok, _ = store.open_job("santander", PARAMS, "b" * 64)
        store.mark_running(ok.job_id)
        store.mark_succeeded(ok.job_id, result_key="b" * 64)
        store.open_job("santander", PARAMS, "c" * 64)  # prunes `failed`
        assert store.get(failed.job_id) is None
        assert store.evicted_result_key(failed.job_id) is None

    def test_evicted_mapping_is_bounded(self):
        store = JobStore(terminal_capacity=1)
        store._evicted_capacity = 2  # tighten the bound for the test
        ids = []
        for index in range(4):
            job, _ = store.open_job("santander", PARAMS, f"{index:064d}")
            store.mark_running(job.job_id)
            store.mark_succeeded(job.job_id, result_key=job.key)
            ids.append(job.job_id)
        store.open_job("santander", PARAMS, "z" * 64)
        kept = [job_id for job_id in ids if store.evicted_result_key(job_id)]
        assert len(kept) <= 2
        assert store.evicted_result_key(ids[0]) is None  # oldest dropped first
