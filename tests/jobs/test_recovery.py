"""Crash-recovery matrix: kill the server at chosen points, prove recovery.

Each scenario runs a real store-backed server subprocess (see
``tests/jobs/harness.py``), takes it down at one transition point —
deterministically via a ``REPRO_JOBS_FAULT`` crash point or with an actual
``kill -9`` mid-mine — restarts a fresh process against the same snapshot,
and asserts the ISSUE-5 acceptance criteria:

* the job is requeued (or republished) and **completes**;
* the completed result's CAP page is **byte-identical** to a clean
  in-process mine of the same (dataset, parameters);
* the execution-audit log shows exactly the expected attempts — never a
  duplicate execution of the same attempt, and no re-execution at all when
  success was already durable.

The matrix covers kill point × lease state at restart (lapsed → requeued
during startup recovery; still live → reclaimed later by the lease worker)
× dedup interaction (duplicate submissions ride the same job; resubmission
after durable success is served from cache).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import pytest

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_covid19

from tests.jobs.harness import (
    ServerProcess,
    caps_page_bytes,
    list_jobs,
    poll_job,
    read_exec_log,
    reference_caps_bytes,
    submit_async,
    upload_dataset,
    wait_for_exec_entries,
    wait_for_state,
)

DATASET_NAME = "covid19"


@pytest.fixture(scope="module")
def dataset():
    return generate_covid19(seed=7)


@pytest.fixture(scope="module")
def params_doc():
    return recommended_parameters(DATASET_NAME).to_document()


@pytest.fixture(scope="module")
def reference_page(dataset, params_doc):
    return reference_caps_bytes(dataset, params_doc)


@dataclass
class Scenario:
    id: str
    #: REPRO_JOBS_FAULT crash point, or None for a timing-based SIGKILL.
    fault: str | None
    #: First server's lease; the absolute expiry it stamps is what the
    #: restarted process judges, so this picks the lease state at restart.
    lease_seconds: float
    #: Sleep between death and restart (past the lease -> lapsed at startup).
    sleep_before_restart: float
    #: Expected execution-audit attempts for the job, in order.
    attempts: list[int]
    #: Hold the mine long enough to kill it mid-run (SIGKILL scenario).
    mine_delay: float | None = None
    #: Submit identical parameters twice before the kill (dedup-hit arm).
    dedup_before_kill: bool = False
    #: Resubmit after recovery and assert cache-served success (dedup arm).
    dedup_after_restart: bool = False


SCENARIOS = [
    Scenario(
        id="after-enqueue",
        fault="after-enqueue",
        lease_seconds=1.0,
        sleep_before_restart=0.0,
        attempts=[1],  # never claimed before the crash; executed once after
    ),
    Scenario(
        id="after-claim-lapsed-lease",
        fault="after-claim",
        lease_seconds=1.0,
        sleep_before_restart=1.5,
        attempts=[2],  # dead claim burned attempt 1 before it could execute
    ),
    Scenario(
        id="after-claim-live-lease",
        fault="after-claim",
        lease_seconds=5.0,
        sleep_before_restart=0.0,
        attempts=[2],  # startup leaves the live lease; the worker reclaims it
    ),
    Scenario(
        id="before-succeed-persist",
        fault="before-succeed-persist",
        lease_seconds=1.0,
        sleep_before_restart=1.5,
        attempts=[1, 2],  # first run completed but its success never landed
    ),
    Scenario(
        id="after-succeed-persist",
        fault="after-succeed-persist",
        lease_seconds=1.0,
        sleep_before_restart=0.0,
        attempts=[1],  # success durable: republished, never re-executed
        dedup_after_restart=True,
    ),
    Scenario(
        id="sigkill-mid-mine",
        fault=None,
        lease_seconds=1.0,
        sleep_before_restart=1.5,
        attempts=[1, 2],
        mine_delay=8.0,
        dedup_before_kill=True,
    ),
]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.id)
def test_kill_and_recover(scenario, tmp_path, dataset, params_doc, reference_page):
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"

    with ServerProcess(
        store,
        lease_seconds=scenario.lease_seconds,
        worker_poll=0.2,
        fault=scenario.fault,
        exec_log=exec_log,
        mine_delay=scenario.mine_delay,
        worker_id="first",
    ) as first:
        upload_dataset(first, dataset)
        submitted = submit_async(first, DATASET_NAME, params_doc)
        job_id = submitted["job_id"] if submitted else None

        if scenario.fault is not None:
            # The crash point fires on its own; the submission may or may
            # not have been answered depending on where it sits.
            assert first.wait_exit() == 70  # FAULT_EXIT_CODE, not a crash
        else:
            assert job_id is not None
            running = wait_for_state(first, job_id, "running")
            assert running["worker_id"] == "first"
            # Only kill once the execution is underway (audit line written),
            # so "interrupted mid-mine" is what the log actually records.
            wait_for_exec_entries(exec_log, job_id, count=1)
            if scenario.dedup_before_kill:
                duplicate = submit_async(first, DATASET_NAME, params_doc)
                assert duplicate["job_id"] == job_id
                assert duplicate["deduplicated"] is True
            first.kill()

    if scenario.sleep_before_restart:
        time.sleep(scenario.sleep_before_restart)

    with ServerProcess(
        store,
        lease_seconds=1.0,
        worker_poll=0.2,
        exec_log=exec_log,
        worker_id="second",
    ) as second:
        if job_id is None:
            jobs = list_jobs(second)
            assert len(jobs) == 1, jobs
            job_id = jobs[0]["job_id"]

        final = poll_job(second, job_id)
        assert final["state"] == "succeeded", final
        assert final["progress"] == 1.0
        assert final["attempt"] == scenario.attempts[-1]
        assert final["result_key"], final

        # The recovered result is byte-identical to a clean mine.
        page = caps_page_bytes(second, final["result_key"])
        assert page == reference_page

        entries = [e for e in read_exec_log(exec_log) if e[0] == job_id]
        assert [attempt for (_, _, attempt) in entries] == scenario.attempts
        # Exactly-once per attempt: no (job, attempt) pair appears twice.
        assert len({(job, attempt) for (job, _, attempt) in entries}) == len(entries)

        if scenario.dedup_after_restart:
            # Success was durable: a fresh submission opens a *new* job
            # that the result cache satisfies without re-mining.
            resubmitted = submit_async(second, DATASET_NAME, params_doc)
            assert resubmitted["job_id"] != job_id
            refinal = poll_job(second, resubmitted["job_id"])
            assert refinal["state"] == "succeeded"
            assert refinal["result_key"] == final["result_key"]
            again = [e for e in read_exec_log(exec_log) if e[0] == job_id]
            assert [a for (_, _, a) in again] == scenario.attempts  # untouched


def test_graceful_shutdown_keeps_registry(tmp_path, dataset, params_doc):
    """Ctrl-C (SIGINT) persists the registry exactly like a transition does:
    a restart serves the same jobs without any recovery work."""
    store = tmp_path / "store.json"
    with ServerProcess(store, worker_id="first") as first:
        upload_dataset(first, dataset)
        submitted = submit_async(first, DATASET_NAME, params_doc)
        final = poll_job(first, submitted["job_id"])
        assert final["state"] == "succeeded"
        assert first.interrupt() == 0

    with ServerProcess(store, worker_id="second") as second:
        jobs = list_jobs(second)
        assert [job["job_id"] for job in jobs] == [submitted["job_id"]]
        assert jobs[0]["state"] == "succeeded"
