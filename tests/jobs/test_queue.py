"""JobQueue + executor behaviour: real threads, cooperative cancellation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.parallel import MiningCancelled, MiningControl
from repro.jobs import (
    CANCELLED,
    FAILED,
    SUCCEEDED,
    TERMINAL_STATES,
    JobQueue,
)

KEY = "f" * 64
PARAMS = {"min_support": 5}
TIMEOUT = 10.0


def wait_until(predicate, timeout: float = TIMEOUT) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


def wait_terminal(queue: JobQueue, job_id: str):
    wait_until(lambda: queue.get(job_id).state in TERMINAL_STATES)
    return queue.get(job_id)


@pytest.fixture
def queue():
    q = JobQueue(width=1)
    yield q
    q.shutdown(wait=True)


class TestExecution:
    def test_successful_run(self, queue):
        def runner(control: MiningControl) -> str:
            control.report(1, 2)
            control.report(2, 2)
            return KEY

        job, created = queue.submit("santander", PARAMS, KEY, runner)
        assert created
        final = wait_terminal(queue, job.job_id)
        assert final.state == SUCCEEDED
        assert final.progress == 1.0
        assert final.result_key == KEY

    def test_failure_captured(self, queue):
        def runner(control: MiningControl) -> str:
            raise RuntimeError("shard exploded")

        job, _ = queue.submit("santander", PARAMS, KEY, runner)
        final = wait_terminal(queue, job.job_id)
        assert final.state == FAILED
        assert final.error.type == "RuntimeError"
        assert final.error.message == "shard exploded"
        assert "shard exploded" in final.error.traceback

    def test_progress_flows_from_control(self, queue):
        gate = threading.Event()

        def runner(control: MiningControl) -> str:
            control.report(1, 4)
            gate.wait(TIMEOUT)
            return KEY

        job, _ = queue.submit("santander", PARAMS, KEY, runner)
        wait_until(lambda: queue.get(job.job_id).progress > 0)
        snapshot = queue.get(job.job_id)
        assert snapshot.progress == pytest.approx(0.25)
        assert (snapshot.shards_done, snapshot.shards_total) == (1, 4)
        gate.set()
        assert wait_terminal(queue, job.job_id).progress == 1.0

    def test_dedup_returns_inflight_job(self, queue):
        gate = threading.Event()
        runs = []

        def runner(control: MiningControl) -> str:
            runs.append(1)
            gate.wait(TIMEOUT)
            return KEY

        first, created1 = queue.submit("santander", PARAMS, KEY, runner)
        second, created2 = queue.submit("santander", PARAMS, KEY, runner)
        assert created1 and not created2
        assert first.job_id == second.job_id
        gate.set()
        wait_terminal(queue, first.job_id)
        assert sum(runs) == 1  # the second runner never scheduled

    def test_resubmit_after_success_is_a_new_job(self, queue):
        job1, _ = queue.submit("santander", PARAMS, KEY, lambda control: KEY)
        wait_terminal(queue, job1.job_id)
        job2, created = queue.submit("santander", PARAMS, KEY, lambda control: KEY)
        assert created and job2.job_id != job1.job_id
        wait_terminal(queue, job2.job_id)


class TestCancellation:
    def test_cancel_running_job_at_checkpoint(self, queue):
        started = threading.Event()

        def runner(control: MiningControl) -> str:
            started.set()
            for _ in range(1000):
                control.checkpoint()  # the engine's between-shards poll
                time.sleep(0.01)
            return KEY

        job, _ = queue.submit("santander", PARAMS, KEY, runner)
        assert started.wait(TIMEOUT)
        queue.cancel(job.job_id)
        final = wait_terminal(queue, job.job_id)
        assert final.state == CANCELLED
        assert final.progress < 1.0
        assert final.error is None

    def test_cancel_queued_job_never_runs(self, queue):
        gate = threading.Event()
        ran = []

        def blocker(control: MiningControl) -> str:
            gate.wait(TIMEOUT)
            return "g" * 64

        def victim(control: MiningControl) -> str:
            ran.append(1)
            return KEY

        # width=1: the blocker occupies the only worker, the victim queues.
        blocking, _ = queue.submit("santander", PARAMS, "g" * 64, blocker)
        queued, _ = queue.submit("santander", PARAMS, KEY, victim)
        cancelled = queue.cancel(queued.job_id)
        assert cancelled.state == CANCELLED
        gate.set()
        wait_terminal(queue, blocking.job_id)
        queue.shutdown(wait=True)
        assert not ran  # the worker saw the terminal state and skipped it

    def test_cancel_unknown_job(self, queue):
        with pytest.raises(KeyError):
            queue.cancel("job-0042-missing")

    def test_mining_cancelled_maps_to_cancelled_state(self, queue):
        def runner(control: MiningControl) -> str:
            raise MiningCancelled("stop")

        job, _ = queue.submit("santander", PARAMS, KEY, runner)
        assert wait_terminal(queue, job.job_id).state == CANCELLED


class TestShutdown:
    def test_shutdown_cancels_running_jobs(self):
        """Ctrl-C must not wait out an in-flight mine: shutdown requests
        cancellation, the runner aborts at its next checkpoint."""
        queue = JobQueue(width=1)
        started = threading.Event()

        def runner(control: MiningControl) -> str:
            started.set()
            for _ in range(10_000):
                control.checkpoint()
                time.sleep(0.005)
            return KEY

        job, _ = queue.submit("santander", PARAMS, KEY, runner)
        assert started.wait(TIMEOUT)
        begun = time.monotonic()
        queue.shutdown(wait=True)
        assert time.monotonic() - begun < TIMEOUT / 2  # not the full 50 s loop
        assert queue.get(job.job_id).state == CANCELLED


class TestCounters:
    def test_counters_include_executor_width(self, queue):
        queue.submit("santander", PARAMS, KEY, lambda control: KEY)
        counts = queue.counters()
        assert counts["executor_width"] == 1
        assert counts["total"] == 1
