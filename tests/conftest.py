"""Shared fixtures: small hand-built datasets with known ground truth.

The synthetic generators are great for integration tests, but unit tests
want datasets where every CAP is known by construction.  ``tiny_dataset``
builds one: four sensors in two spatial clusters, with sensors ``a`` and
``b`` sharing step changes (they co-evolve) and ``c``/``d`` independent.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.parameters import MiningParameters
from repro.core.types import Sensor, SensorDataset


def make_timeline(n: int, start: datetime | None = None, hours: int = 1) -> list[datetime]:
    start = start or datetime(2016, 3, 1)
    return [start + timedelta(hours=hours * i) for i in range(n)]


def step_series(n: int, jump_at: list[int], jump: float = 5.0, base: float = 10.0) -> np.ndarray:
    """A flat series with +jump steps at the given indices."""
    values = np.full(n, base, dtype=np.float64)
    level = base
    for i in range(1, n):
        if i in jump_at:
            level += jump
        values[i] = level
    return values


@pytest.fixture
def tiny_dataset() -> SensorDataset:
    """Four sensors, two clusters; a+b co-evolve at steps 3, 7, 12.

    Cluster 1 (|a−b| ≈ 110 m): ``a`` (temperature), ``b`` (traffic).
    Cluster 2 (~11 km away):   ``c`` (temperature), ``d`` (humidity),
    co-evolving at steps 5 and 9 only.
    """
    n = 16
    timeline = make_timeline(n)
    sensors = [
        Sensor("a", "temperature", 43.4620, -3.8020),
        Sensor("b", "traffic_volume", 43.4630, -3.8020),
        Sensor("c", "temperature", 43.5600, -3.8020),
        Sensor("d", "humidity", 43.5610, -3.8020),
    ]
    measurements = {
        "a": step_series(n, [3, 7, 12]),
        "b": step_series(n, [3, 7, 12], base=100.0),
        "c": step_series(n, [5, 9], base=12.0),
        "d": step_series(n, [5, 9, 14], base=60.0),
    }
    return SensorDataset("tiny", timeline, sensors, measurements)


@pytest.fixture
def tiny_params() -> MiningParameters:
    """Parameters under which tiny_dataset's CAPs are exactly {a,b} and {c,d}."""
    return MiningParameters(
        evolving_rate=1.0,
        distance_threshold=2.0,
        max_attributes=3,
        min_support=2,
    )
