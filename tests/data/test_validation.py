"""Unit tests for upload validation."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.data.schema import DataRow, LocationRow
from repro.data.validation import (
    DatasetValidationError,
    validate_attributes,
    validate_data_rows,
    validate_locations,
    validate_timeline,
)

T0 = datetime(2016, 3, 1)


def t(hours: int) -> datetime:
    return T0 + timedelta(hours=hours)


GOOD_LOCATIONS = [
    LocationRow("s1", "temperature", 43.46, -3.80),
    LocationRow("s2", "light", 43.47, -3.81),
]


class TestAttributes:
    def test_good(self):
        assert validate_attributes(["temperature", "light"]) == []

    def test_empty_registry(self):
        assert any("no attributes" in e for e in validate_attributes([]))

    def test_duplicate(self):
        errors = validate_attributes(["a", "a"])
        assert any("duplicate" in e for e in errors)

    def test_whitespace_name(self):
        errors = validate_attributes([" temp"])
        assert any("invalid" in e for e in errors)


class TestLocations:
    def test_good(self):
        assert validate_locations(GOOD_LOCATIONS, ["temperature", "light"]) == []

    def test_duplicate_id(self):
        rows = [GOOD_LOCATIONS[0], LocationRow("s1", "light", 43.0, -3.0)]
        errors = validate_locations(rows, ["temperature", "light"])
        assert any("duplicate sensor id" in e for e in errors)

    def test_unregistered_attribute(self):
        errors = validate_locations(GOOD_LOCATIONS, ["temperature"])
        assert any("not in attribute.csv" in e for e in errors)

    def test_out_of_range_coordinates(self):
        rows = [LocationRow("s1", "t", 95.0, -200.0)]
        errors = validate_locations(rows, ["t"])
        assert any("latitude" in e for e in errors)
        assert any("longitude" in e for e in errors)

    def test_empty(self):
        assert any("no sensors" in e for e in validate_locations([], ["t"]))

    def test_errors_carry_line_numbers(self):
        rows = [GOOD_LOCATIONS[0], LocationRow("s2", "ghost", 0.0, 0.0)]
        errors = validate_locations(rows, ["temperature"])
        assert any("line 3" in e for e in errors)  # header is line 1


class TestDataRows:
    def test_good(self):
        rows = [
            DataRow("s1", "temperature", t(0), 1.0),
            DataRow("s1", "temperature", t(1), 2.0),
        ]
        assert validate_data_rows(rows, GOOD_LOCATIONS) == []

    def test_undeclared_sensor(self):
        rows = [DataRow("ghost", "temperature", t(0), 1.0)]
        errors = validate_data_rows(rows, GOOD_LOCATIONS)
        assert any("not declared" in e for e in errors)

    def test_attribute_mismatch_is_undeclared(self):
        rows = [DataRow("s1", "light", t(0), 1.0)]  # s1 is temperature
        errors = validate_data_rows(rows, GOOD_LOCATIONS)
        assert any("not declared" in e for e in errors)

    def test_duplicate_measurement(self):
        rows = [
            DataRow("s1", "temperature", t(0), 1.0),
            DataRow("s1", "temperature", t(0), 2.0),
        ]
        errors = validate_data_rows(rows, GOOD_LOCATIONS)
        assert any("duplicate measurement" in e for e in errors)

    def test_empty(self):
        assert any("no measurements" in e for e in validate_data_rows([], GOOD_LOCATIONS))


class TestTimeline:
    def test_even_grid_ok(self):
        rows = [DataRow("s1", "t", t(i), 1.0) for i in range(4)]
        assert validate_timeline(rows) == []

    def test_uneven_grid_rejected(self):
        rows = [
            DataRow("s1", "t", t(0), 1.0),
            DataRow("s1", "t", t(1), 1.0),
            DataRow("s1", "t", t(1) + timedelta(minutes=30), 1.0),
        ]
        errors = validate_timeline(rows)
        assert any("not evenly spaced" in e for e in errors)

    def test_single_timestamp(self):
        rows = [DataRow("s1", "t", t(0), 1.0)]
        errors = validate_timeline(rows)
        assert any("fewer than two" in e for e in errors)

    def test_missing_rows_on_grid_ok(self):
        # A sensor can skip grid points entirely; resample fills NaN.
        rows = [DataRow("s1", "t", t(i), 1.0) for i in (0, 1, 2, 3)]
        rows += [DataRow("s2", "t", t(i), 1.0) for i in (0, 2)]
        assert validate_timeline(rows) == []


class TestValidationError:
    def test_requires_errors(self):
        with pytest.raises(ValueError):
            DatasetValidationError([])

    def test_message_previews_errors(self):
        exc = DatasetValidationError([f"error {i}" for i in range(8)])
        assert "8 validation error(s)" in str(exc)
        assert "+3 more" in str(exc)
        assert len(exc.errors) == 8
