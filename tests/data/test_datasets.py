"""Tests for the dataset registry and the Section-4 inventory table."""

from __future__ import annotations

import pytest

from repro.data.datasets import (
    DATASET_NAMES,
    dataset_table,
    generate,
    recommended_parameters,
)


class TestRegistry:
    def test_all_four_paper_datasets(self):
        assert set(DATASET_NAMES) == {"santander", "china6", "china13", "covid19"}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_generate_by_name(self, name):
        ds = generate(name, seed=0)
        assert ds.name == name
        assert len(ds) >= 2

    def test_generate_unknown(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            generate("tokyo")

    def test_generate_forwards_overrides(self):
        ds = generate("santander", seed=0, neighbourhoods=3)
        assert len(ds) == 15

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_recommended_parameters_exist(self, name):
        params = recommended_parameters(name)
        assert params.min_support >= 1

    def test_recommended_parameters_unknown(self):
        with pytest.raises(KeyError):
            recommended_parameters("tokyo")

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_recommended_parameters_find_patterns(self, name):
        from repro.core.miner import MiscelaMiner

        ds = generate(name, seed=0)
        result = MiscelaMiner(recommended_parameters(name)).mine(ds)
        assert result.num_caps > 0


class TestDatasetTable:
    def test_one_row_per_dataset(self):
        rows = dataset_table(seed=0)
        assert [r["dataset"] for r in rows] == list(DATASET_NAMES)

    def test_paper_columns_present(self):
        row = dataset_table(seed=0)[0]
        assert row["paper_sensors"] == 552
        assert row["paper_records"] == 2_329_936
        assert row["generated_sensors"] > 0
        assert row["generated_records"] > 0

    def test_covid_generated_sensor_count_matches_paper(self):
        rows = {r["dataset"]: r for r in dataset_table(seed=0)}
        # COVID-19 is small enough to generate at full published scale.
        assert rows["covid19"]["generated_sensors"] == rows["covid19"]["paper_sensors"]
