"""Tests for dataset ⇄ document conversion (store persistence)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.documents import dataset_from_document, dataset_to_document
from repro.data.synthetic import generate_covid19


class TestRoundTrip:
    def test_tiny_round_trip(self, tiny_dataset):
        doc = dataset_to_document(tiny_dataset)
        restored = dataset_from_document(doc)
        assert restored.name == tiny_dataset.name
        assert restored.sensor_ids == tiny_dataset.sensor_ids
        assert restored.timeline == tiny_dataset.timeline
        assert restored.attributes == tiny_dataset.attributes
        for sid in tiny_dataset.sensor_ids:
            np.testing.assert_allclose(
                restored.values(sid), tiny_dataset.values(sid), equal_nan=True
            )

    def test_nan_becomes_none_and_back(self, tiny_dataset):
        values = tiny_dataset.values("a").copy()
        values[0] = np.nan
        ds = tiny_dataset.subset(tiny_dataset.sensor_ids)
        ds._measurements["a"] = values  # type: ignore[attr-defined]
        doc = dataset_to_document(ds)
        assert doc["series"]["a"][0] is None
        restored = dataset_from_document(doc)
        assert np.isnan(restored.values("a")[0])

    def test_document_is_pure_json(self, tiny_dataset):
        doc = dataset_to_document(tiny_dataset)
        rebuilt = json.loads(json.dumps(doc))
        restored = dataset_from_document(rebuilt)
        assert restored.sensor_ids == tiny_dataset.sensor_ids

    def test_generated_dataset_round_trip(self):
        ds = generate_covid19(seed=0, steps=50)
        restored = dataset_from_document(dataset_to_document(ds))
        assert restored.num_records == ds.num_records
        assert restored.describe() == ds.describe()

    def test_sensor_metadata_preserved(self, tiny_dataset):
        restored = dataset_from_document(dataset_to_document(tiny_dataset))
        for sid in tiny_dataset.sensor_ids:
            original = tiny_dataset.sensor(sid)
            copy = restored.sensor(sid)
            assert (copy.attribute, copy.lat, copy.lon) == (
                original.attribute, original.lat, original.lon,
            )
