"""Unit tests for CSV reading/writing and the chunked upload protocol."""

from __future__ import annotations

import io
import math
from datetime import datetime

import numpy as np
import pytest

from repro.data.csv_io import (
    ChunkAssembler,
    dataset_to_rows,
    iter_chunks,
    read_attribute_csv,
    read_data_csv,
    read_dataset_dir,
    read_location_csv,
    write_dataset_dir,
)
from repro.data.schema import DataRow, LocationRow
from repro.data.validation import DatasetValidationError

DATA_CSV = """id,attribute,time,data
00000,temperature,2016-03-01 00:00:00,null
00000,temperature,2016-03-01 01:00:00,9.87
00001,light,2016-03-01 00:00:00,120
00001,light,2016-03-01 01:00:00,130
"""

LOCATION_CSV = """id,attribute,lat,lon
00000,temperature,43.46192,-3.80176
00001,light,43.46212,-3.79979
"""

ATTRIBUTE_CSV = "temperature\nlight\n"


class TestReadDataCsv:
    def test_parses_paper_example(self):
        rows = read_data_csv(io.StringIO(DATA_CSV))
        assert len(rows) == 4
        assert rows[0].is_null
        assert rows[1].value == pytest.approx(9.87)
        assert rows[1].time == datetime(2016, 3, 1, 1)

    def test_missing_header(self):
        with pytest.raises(DatasetValidationError, match="header"):
            read_data_csv(io.StringIO("a,b\n1,2\n"))

    def test_wrong_field_count(self):
        bad = "id,attribute,time,data\nx,t,2016-03-01 00:00:00\n"
        with pytest.raises(DatasetValidationError, match="4 fields"):
            read_data_csv(io.StringIO(bad))

    def test_bad_timestamp_reports_line(self):
        bad = "id,attribute,time,data\nx,t,yesterday,1.0\n"
        with pytest.raises(DatasetValidationError, match="line 2"):
            read_data_csv(io.StringIO(bad))

    def test_empty_lines_skipped(self):
        rows = read_data_csv(io.StringIO(DATA_CSV + "\n\n"))
        assert len(rows) == 4

    def test_collects_multiple_errors(self):
        bad = (
            "id,attribute,time,data\n"
            "x,t,nope,1.0\n"
            "y,t,2016-03-01 00:00:00,notanumber\n"
        )
        with pytest.raises(DatasetValidationError) as exc:
            read_data_csv(io.StringIO(bad))
        assert len(exc.value.errors) == 2


class TestReadLocationCsv:
    def test_parses_paper_example(self):
        rows = read_location_csv(io.StringIO(LOCATION_CSV))
        assert rows[0] == LocationRow("00000", "temperature", 43.46192, -3.80176)

    def test_missing_header(self):
        with pytest.raises(DatasetValidationError, match="header"):
            read_location_csv(io.StringIO("x\n"))

    def test_bad_coordinate(self):
        bad = "id,attribute,lat,lon\ns,t,abc,0\n"
        with pytest.raises(DatasetValidationError, match="line 2"):
            read_location_csv(io.StringIO(bad))


class TestReadAttributeCsv:
    def test_one_per_line(self):
        assert read_attribute_csv(io.StringIO(ATTRIBUTE_CSV)) == ["temperature", "light"]

    def test_blank_lines_skipped(self):
        assert read_attribute_csv(io.StringIO("a\n\nb\n")) == ["a", "b"]


class TestDatasetDirRoundTrip:
    def test_round_trip(self, tmp_path, tiny_dataset):
        write_dataset_dir(tiny_dataset, tmp_path / "tiny")
        loaded = read_dataset_dir(tmp_path / "tiny", name="tiny")
        assert loaded.sensor_ids == tiny_dataset.sensor_ids
        assert loaded.timeline == tiny_dataset.timeline
        for sid in tiny_dataset.sensor_ids:
            np.testing.assert_allclose(
                loaded.values(sid), tiny_dataset.values(sid), equal_nan=True
            )

    def test_round_trip_preserves_nan(self, tmp_path, tiny_dataset):
        values = tiny_dataset.values("a").copy()
        values[2] = np.nan
        import copy

        ds = tiny_dataset.subset(tiny_dataset.sensor_ids, name="tiny2")
        ds._measurements["a"] = values  # type: ignore[attr-defined]
        write_dataset_dir(ds, tmp_path / "d")
        loaded = read_dataset_dir(tmp_path / "d")
        assert math.isnan(loaded.values("a")[2])

    def test_files_exist(self, tmp_path, tiny_dataset):
        directory = write_dataset_dir(tiny_dataset, tmp_path / "out")
        assert (directory / "data.csv").exists()
        assert (directory / "location.csv").exists()
        assert (directory / "attribute.csv").exists()

    def test_validation_runs_on_load(self, tmp_path, tiny_dataset):
        directory = write_dataset_dir(tiny_dataset, tmp_path / "bad")
        # Corrupt location.csv: drop a declared sensor.
        loc = (directory / "location.csv").read_text().splitlines()
        (directory / "location.csv").write_text("\n".join(loc[:-1]) + "\n")
        with pytest.raises(DatasetValidationError):
            read_dataset_dir(directory)


class TestChunkProtocol:
    def _rows(self, n: int):
        return [
            DataRow("s1", "t", datetime(2016, 3, 1) .replace(hour=0) , 0.0)
        ] if False else [
            DataRow("s1", "t", datetime(2016, 3, 1, i % 24, 0, 0), float(i))
            for i in range(n)
        ]

    def test_chunk_sizes(self):
        rows = self._rows(23)
        chunks = list(iter_chunks(rows, chunk_lines=10))
        assert len(chunks) == 3
        # Each chunk is independently parseable with a header.
        sizes = [len(read_data_csv(io.StringIO(c))) for c in chunks]
        assert sizes == [10, 10, 3]

    def test_empty_rows_single_header_chunk(self):
        chunks = list(iter_chunks([], chunk_lines=10))
        assert len(chunks) == 1
        assert read_data_csv(io.StringIO(chunks[0])) == []

    def test_bad_chunk_lines(self):
        with pytest.raises(ValueError):
            list(iter_chunks([], chunk_lines=0))

    def test_assembler_round_trip(self, tiny_dataset):
        data_rows, location_rows = dataset_to_rows(tiny_dataset)
        assembler = ChunkAssembler("tiny")
        for chunk in iter_chunks(data_rows, chunk_lines=7):
            assembler.add_chunk(chunk)
        rebuilt = assembler.finish(location_rows, list(tiny_dataset.attributes))
        assert rebuilt.sensor_ids == tiny_dataset.sensor_ids
        assert rebuilt.num_records == tiny_dataset.num_records
        assert assembler.chunks_received == math.ceil(len(data_rows) / 7)

    def test_assembler_rejects_after_finish(self, tiny_dataset):
        data_rows, location_rows = dataset_to_rows(tiny_dataset)
        assembler = ChunkAssembler("tiny")
        for chunk in iter_chunks(data_rows):
            assembler.add_chunk(chunk)
        assembler.finish(location_rows, list(tiny_dataset.attributes))
        with pytest.raises(RuntimeError, match="finished"):
            assembler.add_chunk("id,attribute,time,data\n")

    def test_assembler_validates_on_finish(self):
        assembler = ChunkAssembler("x")
        assembler.add_chunk(
            "id,attribute,time,data\nghost,t,2016-03-01 00:00:00,1\n"
            "ghost,t,2016-03-01 01:00:00,2\n"
        )
        with pytest.raises(DatasetValidationError):
            assembler.finish([LocationRow("s1", "t", 0.0, 0.0)], ["t"])

    def test_assembler_requires_name(self):
        with pytest.raises(ValueError):
            ChunkAssembler("")
