"""Unit tests for timeline assembly and gap handling."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.types import Sensor, SensorDataset
from repro.data.resample import assemble_dataset, downsample, fill_gaps
from repro.data.schema import DataRow, LocationRow
from tests.conftest import make_timeline

T0 = datetime(2016, 3, 1)


def t(hours: int) -> datetime:
    return T0 + timedelta(hours=hours)


class TestAssembleDataset:
    def test_dense_assembly(self):
        rows = [DataRow("s1", "t", t(i), float(i)) for i in range(4)]
        locations = [LocationRow("s1", "t", 43.0, -3.0)]
        ds = assemble_dataset("d", rows, locations)
        np.testing.assert_array_equal(ds.values("s1"), [0.0, 1.0, 2.0, 3.0])

    def test_skipped_grid_points_become_nan(self):
        rows = [DataRow("s1", "t", t(i), float(i)) for i in (0, 1, 3)]
        locations = [LocationRow("s1", "t", 43.0, -3.0)]
        ds = assemble_dataset("d", rows, locations)
        assert ds.num_timestamps == 4
        assert np.isnan(ds.values("s1")[2])

    def test_sensor_with_no_rows_is_all_nan(self):
        rows = [DataRow("s1", "t", t(i), 1.0) for i in range(3)]
        locations = [
            LocationRow("s1", "t", 43.0, -3.0),
            LocationRow("s2", "h", 43.0, -3.0),
        ]
        ds = assemble_dataset("d", rows, locations)
        assert np.all(np.isnan(ds.values("s2")))

    def test_off_grid_timestamp_rejected(self):
        rows = [
            DataRow("s1", "t", t(0), 1.0),
            DataRow("s1", "t", t(2), 1.0),
            DataRow("s1", "t", t(2) + timedelta(minutes=61), 1.0),
        ]
        with pytest.raises(ValueError, match="grid"):
            assemble_dataset("d", rows, [LocationRow("s1", "t", 0.0, 0.0)])

    def test_undeclared_sensor_rejected(self):
        rows = [DataRow("ghost", "t", t(i), 1.0) for i in range(2)]
        with pytest.raises(ValueError, match="undeclared"):
            assemble_dataset("d", rows, [LocationRow("s1", "t", 0.0, 0.0)])

    def test_too_few_timestamps(self):
        rows = [DataRow("s1", "t", t(0), 1.0)]
        with pytest.raises(ValueError, match="fewer than two"):
            assemble_dataset("d", rows, [LocationRow("s1", "t", 0.0, 0.0)])


def dataset_with_gaps() -> SensorDataset:
    timeline = make_timeline(8)
    values = np.array([1.0, np.nan, 3.0, np.nan, np.nan, 6.0, np.nan, np.nan])
    return SensorDataset(
        "g", timeline, [Sensor("x", "t", 0.0, 0.0)], {"x": values}
    )


class TestFillGaps:
    def test_interpolate_short_runs(self):
        ds = fill_gaps(dataset_with_gaps(), method="interpolate", max_gap=2)
        v = ds.values("x")
        assert v[1] == pytest.approx(2.0)           # single gap midway 1→3
        assert v[3] == pytest.approx(4.0)           # double gap 3→6
        assert v[4] == pytest.approx(5.0)

    def test_trailing_gap_extends_last_value_interpolate(self):
        ds = fill_gaps(dataset_with_gaps(), method="interpolate", max_gap=2)
        v = ds.values("x")
        assert v[6] == pytest.approx(6.0)
        assert v[7] == pytest.approx(6.0)

    def test_ffill(self):
        ds = fill_gaps(dataset_with_gaps(), method="ffill", max_gap=2)
        v = ds.values("x")
        assert v[1] == 1.0
        assert v[3] == 3.0 and v[4] == 3.0

    def test_long_runs_stay_nan(self):
        ds = fill_gaps(dataset_with_gaps(), method="interpolate", max_gap=1)
        v = ds.values("x")
        assert v[1] == pytest.approx(2.0)
        assert np.isnan(v[3]) and np.isnan(v[4])

    def test_leading_gap_stays_nan(self):
        timeline = make_timeline(4)
        values = np.array([np.nan, 2.0, 3.0, 4.0])
        ds = SensorDataset("g", timeline, [Sensor("x", "t", 0, 0)], {"x": values})
        filled = fill_gaps(ds, method="ffill", max_gap=3)
        assert np.isnan(filled.values("x")[0])

    def test_original_untouched(self):
        ds = dataset_with_gaps()
        fill_gaps(ds)
        assert np.isnan(ds.values("x")[1])

    def test_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            fill_gaps(dataset_with_gaps(), method="magic")

    def test_bad_max_gap(self):
        with pytest.raises(ValueError, match="max_gap"):
            fill_gaps(dataset_with_gaps(), max_gap=0)


class TestDownsample:
    def test_every_second(self):
        timeline = make_timeline(10)
        values = np.arange(10, dtype=float)
        ds = SensorDataset("d", timeline, [Sensor("x", "t", 0, 0)], {"x": values})
        thin = downsample(ds, 2)
        assert thin.num_timestamps == 5
        np.testing.assert_array_equal(thin.values("x"), [0, 2, 4, 6, 8])
        assert thin.interval == timedelta(hours=2)

    def test_identity(self):
        ds = dataset_with_gaps()
        assert downsample(ds, 1) is ds

    def test_too_aggressive(self):
        ds = dataset_with_gaps()
        with pytest.raises(ValueError, match="fewer than two"):
            downsample(ds, 8)

    def test_bad_every(self):
        with pytest.raises(ValueError, match="every"):
            downsample(dataset_with_gaps(), 0)
