"""Tests for the synthetic dataset generators.

Beyond shape checks, these verify that each generator *embeds the structure
the paper's scenarios need* — that is the whole point of the substitution
(see DESIGN.md): Santander's traffic↔temperature correlation, China's
east–west wind corridors, COVID's before/after pattern change.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.evolving import extract_all_evolving
from repro.core.miner import MiscelaMiner
from repro.data.datasets import recommended_parameters
from repro.data.synthetic import (
    PAPER_SHAPES,
    generate_china6,
    generate_china13,
    generate_covid19,
    generate_santander,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator",
        [generate_santander, generate_china6, generate_china13, generate_covid19],
    )
    def test_same_seed_same_data(self, generator):
        a = generator(seed=5)
        b = generator(seed=5)
        assert a.sensor_ids == b.sensor_ids
        for sid in a.sensor_ids:
            np.testing.assert_array_equal(a.values(sid), b.values(sid))

    def test_different_seed_different_data(self):
        a = generate_santander(seed=1)
        b = generate_santander(seed=2)
        assert any(
            not np.array_equal(a.values(sid), b.values(sid), equal_nan=True)
            for sid in a.sensor_ids
        )


class TestPaperShapes:
    def test_all_datasets_registered(self):
        assert set(PAPER_SHAPES) == {"santander", "china6", "china13", "covid19"}

    def test_published_counts(self):
        assert PAPER_SHAPES["santander"]["sensors"] == 552
        assert PAPER_SHAPES["santander"]["records"] == 2_329_936
        assert PAPER_SHAPES["china6"]["sensors"] == 9_438
        assert PAPER_SHAPES["china6"]["records"] == 6_889_740
        assert PAPER_SHAPES["china13"]["sensors"] == 4_810
        assert PAPER_SHAPES["covid19"]["sensors"] == 12
        assert PAPER_SHAPES["covid19"]["records"] == 52_261

    def test_attribute_sets_match_names(self):
        assert len(PAPER_SHAPES["china13"]["attributes"]) == 13
        assert len(PAPER_SHAPES["china6"]["attributes"]) == 6


class TestSantander:
    def test_default_shape(self):
        ds = generate_santander(seed=0)
        assert ds.name == "santander"
        assert len(ds) == 60  # 12 neighbourhoods × 5 attributes
        assert set(ds.attributes) == {
            "temperature", "traffic_volume", "light", "sound", "humidity"
        }

    def test_period_starts_march_2016(self):
        ds = generate_santander(seed=0)
        assert ds.timeline[0] == datetime(2016, 3, 1)

    def test_missing_rate_produces_nans(self):
        ds = generate_santander(seed=0, missing_rate=0.2)
        total = sum(np.isnan(ds.values(sid)).sum() for sid in ds.sensor_ids)
        assert total > 0

    def test_correlated_neighbourhood_mines_traffic_temperature_cap(self):
        ds = generate_santander(seed=0)
        result = MiscelaMiner(recommended_parameters("santander")).mine(ds)
        pairs = {frozenset(c.attributes) for c in result.caps}
        assert frozenset({"traffic_volume", "temperature"}) in pairs

    def test_uncorrelated_neighbourhood_has_weaker_traffic_temp_support(self):
        ds = generate_santander(seed=0, neighbourhoods=8, correlated_fraction=0.5)
        params = recommended_parameters("santander")
        evolving = extract_all_evolving(ds, params)
        from repro.core.evolving import co_evolution_count

        # hoods 0..3 correlated, 4..7 not.
        corr = co_evolution_count(evolving, ("san-000-temperature", "san-000-traffic_volume"))
        uncorr = co_evolution_count(evolving, ("san-004-temperature", "san-004-traffic_volume"))
        assert corr > uncorr

    def test_sensor_count_parameterisation(self):
        ds = generate_santander(seed=0, neighbourhoods=3, sensors_per_neighbourhood=2)
        assert len(ds) == 6

    def test_bad_sensor_count(self):
        with pytest.raises(ValueError):
            generate_santander(sensors_per_neighbourhood=9)


class TestChina:
    def test_china6_shape(self):
        ds = generate_china6(seed=0)
        assert len(ds) == 3 * 5 * 6
        assert len(ds.attributes) == 6

    def test_china13_shape(self):
        ds = generate_china13(seed=0)
        assert len(ds) == 2 * 3 * 13
        assert len(ds.attributes) == 13

    def test_same_row_stations_co_evolve(self):
        ds = generate_china6(seed=0)
        params = recommended_parameters("china6")
        from repro.core.evolving import co_evolution_count

        evolving = extract_all_evolving(ds, params)
        same_row = co_evolution_count(
            evolving, ("china6-r0c0-pm25", "china6-r0c1-pm25")
        )
        cross_row = co_evolution_count(
            evolving, ("china6-r0c0-pm25", "china6-r1c0-pm25")
        )
        assert same_row > 3 * max(cross_row, 1)

    def test_mined_pairs_skew_east_west(self):
        from repro.analysis.statistics import axis_correlation_report

        ds = generate_china6(seed=1)
        result = MiscelaMiner(recommended_parameters("china6")).mine(ds)
        report = axis_correlation_report(ds, result.caps, min_km=10.0)
        assert report["east-west"] > report["north-south"]


class TestCovid19:
    def test_exactly_twelve_sensors(self):
        ds = generate_covid19(seed=0)
        assert len(ds) == 12  # two cities × six pollutants, like the paper

    def test_two_cities(self):
        ds = generate_covid19(seed=0)
        cities = {sid.split("-")[1] for sid in ds.sensor_ids}
        assert cities == {"shanghai", "guangzhou"}

    def test_traffic_pollutants_flatten_after_lockdown(self):
        lockdown = datetime(2020, 1, 23)
        ds = generate_covid19(seed=0, lockdown=lockdown)
        params = recommended_parameters("covid19")
        split = sum(1 for t in ds.timeline if t < lockdown)
        evolving = extract_all_evolving(ds, params)
        no2 = evolving["covid-shanghai-no2"]
        before = int((no2.indices < split).sum())
        after = int((no2.indices > split + 1).sum())
        assert before > 3 * max(after, 1)

    def test_background_pollutants_keep_evolving(self):
        lockdown = datetime(2020, 1, 23)
        ds = generate_covid19(seed=0, lockdown=lockdown)
        params = recommended_parameters("covid19")
        split = sum(1 for t in ds.timeline if t < lockdown)
        evolving = extract_all_evolving(ds, params)
        so2 = evolving["covid-shanghai-so2"]
        after = int((so2.indices > split).sum())
        assert after > 5

    def test_pattern_sets_differ_before_after(self):
        from repro.analysis.comparison import compare_periods

        ds = generate_covid19(seed=0)
        comp = compare_periods(ds, datetime(2020, 1, 23), recommended_parameters("covid19"))
        assert comp.before.num_caps > comp.after.num_caps
        assert len(comp.vanished) > 0
