"""Unit tests for the three-file schema helpers."""

from __future__ import annotations

import math
from datetime import datetime

import pytest

from repro.data.schema import (
    DATA_COLUMNS,
    DEFAULT_CHUNK_LINES,
    LOCATION_COLUMNS,
    NULL_TOKEN,
    DataRow,
    format_time,
    format_value,
    parse_time,
    parse_value,
)


class TestConstants:
    def test_columns_match_paper(self):
        assert DATA_COLUMNS == ("id", "attribute", "time", "data")
        assert LOCATION_COLUMNS == ("id", "attribute", "lat", "lon")

    def test_chunk_size_matches_paper(self):
        assert DEFAULT_CHUNK_LINES == 10_000

    def test_null_token(self):
        assert NULL_TOKEN == "null"


class TestTimeParsing:
    def test_round_trip(self):
        t = datetime(2016, 3, 1, 13, 30, 0)
        assert parse_time(format_time(t)) == t

    def test_paper_example(self):
        assert parse_time("2016-03-01 00:00:00") == datetime(2016, 3, 1)

    def test_bad_format(self):
        with pytest.raises(ValueError):
            parse_time("2016/03/01")


class TestValueParsing:
    def test_float(self):
        assert parse_value("9.87") == pytest.approx(9.87)

    def test_null_token(self):
        assert math.isnan(parse_value("null"))

    def test_empty_is_null(self):
        assert math.isnan(parse_value(""))
        assert math.isnan(parse_value("  "))

    def test_whitespace_tolerated(self):
        assert parse_value(" 5.0 ") == 5.0

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_value("abc")

    def test_format_round_trip(self):
        assert parse_value(format_value(3.25)) == 3.25
        assert format_value(float("nan")) == NULL_TOKEN
        assert format_value(7.0) == "7"


class TestDataRow:
    def test_is_null(self):
        row = DataRow("s", "t", datetime(2016, 3, 1), float("nan"))
        assert row.is_null
        row2 = DataRow("s", "t", datetime(2016, 3, 1), 1.0)
        assert not row2.is_null
