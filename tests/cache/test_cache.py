"""Unit tests for the result cache (Section 3.3 behaviour)."""

from __future__ import annotations

import pytest

from repro.cache.cache import ResultCache
from repro.cache.eviction import LRUPolicy
from repro.core.miner import MiscelaMiner
from repro.store.database import Database


@pytest.fixture
def cache() -> ResultCache:
    return ResultCache(Database())


class TestGetPut:
    def test_miss_then_hit(self, cache, tiny_dataset, tiny_params):
        assert cache.get("tiny", tiny_params) is None
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        cache.put(result)
        cached = cache.get("tiny", tiny_params)
        assert cached is not None
        assert cached.from_cache
        assert {c.key() for c in cached.caps} == {c.key() for c in result.caps}

    def test_stats_track_hits_misses(self, cache, tiny_dataset, tiny_params):
        cache.get("tiny", tiny_params)
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        cache.put(result)
        cache.get("tiny", tiny_params)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_different_params_different_entries(self, cache, tiny_dataset, tiny_params):
        r1 = MiscelaMiner(tiny_params).mine(tiny_dataset)
        p2 = tiny_params.with_updates(min_support=3)
        r2 = MiscelaMiner(p2).mine(tiny_dataset)
        cache.put(r1)
        cache.put(r2)
        assert len(cache) == 2
        assert cache.get("tiny", tiny_params).num_caps == 2
        assert cache.get("tiny", p2).num_caps == 1

    def test_put_same_key_replaces(self, cache, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        cache.put(result)
        cache.put(result)
        assert len(cache) == 1


class TestMineCached:
    def test_second_call_is_cache_hit(self, cache, tiny_dataset, tiny_params):
        first = cache.mine_cached(tiny_dataset, tiny_params)
        second = cache.mine_cached(tiny_dataset, tiny_params)
        assert not first.from_cache
        assert second.from_cache
        assert {c.key() for c in first.caps} == {c.key() for c in second.caps}

    def test_cached_result_equals_fresh(self, cache, tiny_dataset, tiny_params):
        fresh = MiscelaMiner(tiny_params).mine(tiny_dataset)
        cache.put(fresh)
        replayed = cache.mine_cached(tiny_dataset, tiny_params)
        assert [(c.key(), c.support, c.evolving_indices) for c in replayed.caps] == [
            (c.key(), c.support, c.evolving_indices) for c in fresh.caps
        ]


class TestInvalidation:
    def test_invalidate_dataset(self, cache, tiny_dataset, tiny_params):
        cache.put(MiscelaMiner(tiny_params).mine(tiny_dataset))
        cache.put(MiscelaMiner(tiny_params.with_updates(min_support=3)).mine(tiny_dataset))
        removed = cache.invalidate_dataset("tiny")
        assert removed == 2
        assert cache.get("tiny", tiny_params) is None
        assert cache.stats.invalidations == 2

    def test_invalidate_leaves_other_datasets(self, cache, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        cache.put(result)
        other = MiscelaMiner(tiny_params).mine(tiny_dataset.subset(["a", "b"], name="other"))
        cache.put(other)
        cache.invalidate_dataset("other")
        assert cache.get("tiny", tiny_params) is not None


class TestWithEviction:
    def test_lru_bounds_store(self, tiny_dataset, tiny_params):
        cache = ResultCache(Database(), policy=LRUPolicy(2))
        for psi in (1, 2, 3):
            cache.put(MiscelaMiner(tiny_params.with_updates(min_support=psi)).mine(tiny_dataset))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("tiny", tiny_params.with_updates(min_support=1)) is None


class TestPersistenceAcrossRestart:
    def test_cache_survives_database_reload(self, tmp_path, tiny_dataset, tiny_params):
        path = tmp_path / "db.json"
        db = Database(path)
        cache = ResultCache(db)
        cache.put(MiscelaMiner(tiny_params).mine(tiny_dataset))
        db.save()

        cache2 = ResultCache(Database.open(path))
        cached = cache2.get("tiny", tiny_params)
        assert cached is not None
        assert cached.num_caps == 2
