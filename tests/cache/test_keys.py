"""Unit tests for canonical cache keys."""

from __future__ import annotations

import pytest

from repro.cache.keys import cache_key, canonical_payload
from repro.core.parameters import MiningParameters


def params(**overrides):
    defaults = dict(
        evolving_rate=1.0, distance_threshold=2.0, max_attributes=3, min_support=5
    )
    defaults.update(overrides)
    return MiningParameters(**defaults)


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("d", params()) == cache_key("d", params())

    def test_differs_by_dataset(self):
        assert cache_key("a", params()) != cache_key("b", params())

    def test_differs_by_any_parameter(self):
        base = cache_key("d", params())
        assert cache_key("d", params(min_support=6)) != base
        assert cache_key("d", params(evolving_rate=1.5)) != base
        assert cache_key("d", params(direction_aware=True)) != base
        assert cache_key("d", params(max_delay=1)) != base

    def test_per_attribute_rates_order_independent(self):
        a = params(evolving_rate_per_attribute={"x": 1.0, "y": 2.0})
        b = params(evolving_rate_per_attribute={"y": 2.0, "x": 1.0})
        assert cache_key("d", a) == cache_key("d", b)

    def test_key_is_hex_sha256(self):
        key = cache_key("d", params())
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_empty_dataset_name_rejected(self):
        with pytest.raises(ValueError):
            cache_key("", params())

    def test_payload_reconstructs_parameters(self):
        payload = canonical_payload("d", params(max_delay=2))
        assert payload["dataset"] == "d"
        assert MiningParameters.from_document(payload["parameters"]) == params(max_delay=2)
