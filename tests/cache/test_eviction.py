"""Unit tests for cache eviction policies."""

from __future__ import annotations

import pytest

from repro.cache.eviction import LRUPolicy, NoEviction, TTLPolicy


class TestNoEviction:
    def test_never_evicts(self):
        policy = NoEviction()
        for i in range(100):
            assert policy.on_store(f"k{i}") == []
        assert policy.on_hit("k0")


class TestLRU:
    def test_capacity_enforced(self):
        policy = LRUPolicy(2)
        assert policy.on_store("a") == []
        assert policy.on_store("b") == []
        assert policy.on_store("c") == ["a"]

    def test_hit_refreshes_recency(self):
        policy = LRUPolicy(2)
        policy.on_store("a")
        policy.on_store("b")
        policy.on_hit("a")          # a is now most recent
        assert policy.on_store("c") == ["b"]

    def test_restore_existing_refreshes(self):
        policy = LRUPolicy(2)
        policy.on_store("a")
        policy.on_store("b")
        policy.on_store("a")        # refresh, no eviction
        assert policy.on_store("c") == ["b"]

    def test_external_evict(self):
        policy = LRUPolicy(2)
        policy.on_store("a")
        policy.on_evict("a")
        assert len(policy) == 0
        policy.on_evict("ghost")    # idempotent

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)


class TestTTL:
    def test_entries_expire(self):
        now = [0.0]
        policy = TTLPolicy(10.0, clock=lambda: now[0])
        policy.on_store("a")
        assert policy.on_hit("a")
        now[0] = 11.0
        assert not policy.on_hit("a")

    def test_hit_within_ttl(self):
        now = [0.0]
        policy = TTLPolicy(10.0, clock=lambda: now[0])
        policy.on_store("a")
        now[0] = 9.9
        assert policy.on_hit("a")

    def test_store_reports_expired_entries(self):
        now = [0.0]
        policy = TTLPolicy(10.0, clock=lambda: now[0])
        policy.on_store("old")
        now[0] = 20.0
        expired = policy.on_store("new")
        assert expired == ["old"]

    def test_unknown_key_is_miss(self):
        policy = TTLPolicy(10.0)
        assert not policy.on_hit("ghost")

    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            TTLPolicy(0.0)
