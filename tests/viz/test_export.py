"""Unit tests for JSON/GeoJSON export."""

from __future__ import annotations

import json

import pytest

from repro.core.miner import MiscelaMiner
from repro.viz.export import caps_to_geojson, caps_to_json, result_to_json


@pytest.fixture
def result(tiny_dataset, tiny_params):
    return MiscelaMiner(tiny_params).mine(tiny_dataset)


class TestCapsToJson:
    def test_is_array_of_sensor_sets(self, result):
        payload = json.loads(caps_to_json(result.caps))
        assert isinstance(payload, list)
        assert all("sensors" in cap for cap in payload)
        keys = {tuple(cap["sensors"]) for cap in payload}
        assert ("a", "b") in keys

    def test_empty_caps(self):
        assert json.loads(caps_to_json([])) == []

    def test_indent(self, result):
        assert "\n" in caps_to_json(result.caps, indent=2)


class TestResultToJson:
    def test_full_payload(self, result):
        payload = json.loads(result_to_json(result))
        assert payload["dataset"] == "tiny"
        assert payload["parameters"]["min_support"] == 2
        assert len(payload["caps"]) == result.num_caps


class TestGeoJson:
    def test_valid_feature_collection(self, tiny_dataset, result):
        geo = json.loads(caps_to_geojson(tiny_dataset, result.caps))
        assert geo["type"] == "FeatureCollection"
        kinds = {f["properties"]["kind"] for f in geo["features"]}
        assert kinds == {"sensor", "cap"}

    def test_sensor_points_lon_lat_order(self, tiny_dataset, result):
        geo = json.loads(caps_to_geojson(tiny_dataset, result.caps))
        sensor_features = [f for f in geo["features"] if f["properties"]["kind"] == "sensor"]
        assert len(sensor_features) == len(tiny_dataset)
        a = tiny_dataset.sensor("a")
        feature = next(f for f in sensor_features if f["properties"]["id"] == "a")
        assert feature["geometry"]["coordinates"] == [a.lon, a.lat]

    def test_cap_multipoints(self, tiny_dataset, result):
        geo = json.loads(caps_to_geojson(tiny_dataset, result.caps))
        cap_features = [f for f in geo["features"] if f["properties"]["kind"] == "cap"]
        assert len(cap_features) == result.num_caps
        for feature in cap_features:
            assert feature["geometry"]["type"] == "MultiPoint"
            assert len(feature["geometry"]["coordinates"]) == len(
                feature["properties"]["sensors"]
            )
