"""Unit tests for the composed HTML report (Figure 3)."""

from __future__ import annotations

import pytest

from repro.core.miner import MiningResult, MiscelaMiner
from repro.core.types import CAP
from repro.viz.report import CapReport, densest_window


class TestDensestWindow:
    def _cap(self, indices):
        return CAP(
            sensor_ids=frozenset({"a", "b"}),
            attributes=frozenset({"t", "h"}),
            support=len(indices),
            evolving_indices=tuple(indices),
        )

    def test_picks_burst(self):
        cap = self._cap([1, 50, 51, 52, 53, 90])
        lo, hi = densest_window(cap, 100, width=10)
        assert lo <= 50 and hi >= 54

    def test_ties_resolve_earliest(self):
        cap = self._cap([5, 80])
        lo, hi = densest_window(cap, 100, width=10)
        assert lo == 0  # first window containing index 5

    def test_no_indices_falls_back(self):
        cap = CAP(
            sensor_ids=frozenset({"a", "b"}), attributes=frozenset({"t", "h"}), support=0
        )
        assert densest_window(cap, 100, width=10) == (0, 10)

    def test_width_clipped_to_timeline(self):
        cap = self._cap([1])
        lo, hi = densest_window(cap, 5, width=100)
        assert (lo, hi) == (0, 5)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            densest_window(self._cap([1]), 100, width=1)


class TestCapReport:
    @pytest.fixture
    def result(self, tiny_dataset, tiny_params) -> MiningResult:
        return MiscelaMiner(tiny_params).mine(tiny_dataset)

    def test_html_is_self_contained(self, tiny_dataset, result):
        html = CapReport(tiny_dataset, result).to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "http://" not in html.replace("http://www.w3.org", "")  # no external assets

    def test_panels_a_b_c_d_present(self, tiny_dataset, result):
        html = CapReport(tiny_dataset, result).to_html()
        assert "(A) all sensors" in html
        assert "(B) map, CAP highlighted" in html
        assert "(C) measurements, full range" in html
        assert "(D) zoom" in html

    def test_header_shows_parameters(self, tiny_dataset, result):
        html = CapReport(tiny_dataset, result).to_html()
        assert "evolving rate" in html
        assert "min support" in html

    def test_max_caps_limits_sections(self, tiny_dataset, result):
        html = CapReport(tiny_dataset, result, max_caps=1).to_html()
        assert html.count("<section class='cap'>") == 1

    def test_empty_result_message(self, tiny_dataset, tiny_params):
        empty = MiningResult("tiny", tiny_params, caps=[])
        html = CapReport(tiny_dataset, empty).to_html()
        assert "No CAPs found" in html

    def test_save_html(self, tmp_path, tiny_dataset, result):
        path = CapReport(tiny_dataset, result).save_html(tmp_path / "r" / "report.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_maximal_only_filters_subsets(self, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params.with_updates(max_attributes=3)).mine(tiny_dataset)
        report_all = CapReport(tiny_dataset, result, maximal_only=False)
        report_max = CapReport(tiny_dataset, result, maximal_only=True)
        assert len(report_max.caps) <= len(report_all.caps)

    def test_bad_max_caps(self, tiny_dataset, result):
        with pytest.raises(ValueError):
            CapReport(tiny_dataset, result, max_caps=0)

    def test_delayed_cap_shows_delays(self, tiny_dataset, tiny_params):
        cap = CAP(
            sensor_ids=frozenset({"a", "b"}),
            attributes=frozenset({"temperature", "traffic_volume"}),
            support=2,
            evolving_indices=(3, 7),
            delays={"a": 0, "b": 2},
        )
        result = MiningResult("tiny", tiny_params, caps=[cap])
        html = CapReport(tiny_dataset, result).to_html()
        assert "delays:" in html
        assert "b: +2" in html
