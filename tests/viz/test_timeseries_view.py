"""Unit tests for the time-series chart renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import MiscelaMiner
from repro.core.types import Sensor, SensorDataset
from repro.viz.timeseries_view import render_cap_timeseries, render_timeseries
from tests.conftest import make_timeline


class TestRenderTimeseries:
    def test_one_polyline_per_sensor(self, tiny_dataset):
        svg = render_timeseries(tiny_dataset, ["a", "b"]).to_string()
        assert svg.count("<polyline") == 2

    def test_legend_names_sensors_and_attributes(self, tiny_dataset):
        svg = render_timeseries(tiny_dataset, ["a"]).to_string()
        assert "a (temperature)" in svg

    def test_empty_sensor_list_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="non-empty"):
            render_timeseries(tiny_dataset, [])

    def test_unknown_sensor_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            render_timeseries(tiny_dataset, ["ghost"])

    def test_zoom_window(self, tiny_dataset):
        full = render_timeseries(tiny_dataset, ["a"]).to_string()
        zoom = render_timeseries(tiny_dataset, ["a"], window=(4, 10)).to_string()
        assert full != zoom

    @pytest.mark.parametrize("window", [(-1, 5), (5, 5), (0, 999)])
    def test_bad_window_rejected(self, tiny_dataset, window):
        with pytest.raises(ValueError, match="window"):
            render_timeseries(tiny_dataset, ["a"], window=window)

    def test_mark_indices_drawn(self, tiny_dataset):
        plain = render_timeseries(tiny_dataset, ["a"]).to_string()
        marked = render_timeseries(tiny_dataset, ["a"], mark_indices=[3, 7]).to_string()
        assert marked.count("<line") > plain.count("<line")
        assert "2 co-evolving timestamps marked" in marked

    def test_marks_outside_window_skipped(self, tiny_dataset):
        svg = render_timeseries(
            tiny_dataset, ["a"], window=(0, 3), mark_indices=[7]
        ).to_string()
        assert "co-evolving" not in svg

    def test_nan_breaks_polyline(self):
        timeline = make_timeline(6)
        values = np.array([1.0, 2.0, np.nan, 4.0, 5.0, 6.0])
        ds = SensorDataset("g", timeline, [Sensor("x", "t", 0, 0)], {"x": values})
        svg = render_timeseries(ds, ["x"]).to_string()
        assert svg.count("<polyline") == 2  # split at the NaN

    def test_all_nan_sensor_skipped(self):
        timeline = make_timeline(4)
        ds = SensorDataset(
            "g", timeline,
            [Sensor("x", "t", 0, 0), Sensor("y", "h", 0, 0.001)],
            {"x": np.full(4, np.nan), "y": np.arange(4.0)},
        )
        svg = render_timeseries(ds, ["x", "y"]).to_string()
        assert svg.count("<polyline") == 1

    def test_flat_series_does_not_crash(self):
        timeline = make_timeline(4)
        ds = SensorDataset("g", timeline, [Sensor("x", "t", 0, 0)], {"x": np.full(4, 7.0)})
        svg = render_timeseries(ds, ["x"]).to_string()
        assert "<polyline" in svg

    def test_x_axis_labels_from_timeline(self, tiny_dataset):
        svg = render_timeseries(tiny_dataset, ["a"]).to_string()
        assert "03-01 00:00" in svg


class TestRenderCapTimeseries:
    def test_cap_chart_marks_its_indices(self, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        cap = next(c for c in result.caps if c.key() == ("a", "b"))
        svg = render_cap_timeseries(tiny_dataset, cap).to_string()
        assert "3 co-evolving timestamps marked" in svg
        assert "support 3" in svg

    def test_cap_chart_includes_all_members(self, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        cap = result.caps[0]
        svg = render_cap_timeseries(tiny_dataset, cap).to_string()
        assert svg.count("<polyline") == cap.size
