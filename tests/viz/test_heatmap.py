"""Unit tests for the co-evolution heatmap."""

from __future__ import annotations

import pytest

from repro.core.evolving import extract_all_evolving
from repro.viz.heatmap import render_coevolution_heatmap


@pytest.fixture
def evolving(tiny_dataset, tiny_params):
    return extract_all_evolving(tiny_dataset, tiny_params)


class TestHeatmap:
    def test_full_matrix(self, tiny_dataset, evolving):
        svg = render_coevolution_heatmap(tiny_dataset, evolving).to_string()
        # 16 cells for 4 sensors + 11 legend swatches + background.
        assert svg.count("<rect") >= 16 + 11

    def test_tooltips_carry_rates(self, tiny_dataset, evolving):
        svg = render_coevolution_heatmap(tiny_dataset, evolving).to_string()
        assert "a × b: 1.00" in svg      # perfectly co-evolving pair
        assert "a × c: 0.00" in svg      # unrelated pair

    def test_diagonal_is_one(self, tiny_dataset, evolving):
        svg = render_coevolution_heatmap(tiny_dataset, evolving).to_string()
        assert "a × a: 1.00" in svg

    def test_subset(self, tiny_dataset, evolving):
        svg = render_coevolution_heatmap(tiny_dataset, evolving, ["a", "b"]).to_string()
        assert "c × d" not in svg

    def test_row_labels_present(self, tiny_dataset, evolving):
        svg = render_coevolution_heatmap(tiny_dataset, evolving).to_string()
        for sid in tiny_dataset.sensor_ids:
            assert f">{sid}</text>" in svg

    def test_empty_rejected(self, tiny_dataset, evolving):
        with pytest.raises(ValueError):
            render_coevolution_heatmap(tiny_dataset, evolving, [])

    def test_unknown_sensor_rejected(self, tiny_dataset, evolving):
        with pytest.raises(KeyError, match="ghost"):
            render_coevolution_heatmap(tiny_dataset, evolving, ["ghost"])

    def test_missing_evolving_rejected(self, tiny_dataset, evolving):
        incomplete = {k: v for k, v in evolving.items() if k != "a"}
        with pytest.raises(KeyError, match="evolving"):
            render_coevolution_heatmap(tiny_dataset, incomplete, ["a", "b"])
