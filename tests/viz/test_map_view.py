"""Unit tests for the sensor map renderer."""

from __future__ import annotations

import pytest

from repro.core.spatial import build_proximity_graph
from repro.viz.colors import DIM_COLOR, HIGHLIGHT_COLOR
from repro.viz.map_view import MapProjection, render_map


class TestProjection:
    def test_fit_contains_all_sensors(self, tiny_dataset):
        proj = MapProjection.fit(tiny_dataset, 700, 500, padding=40)
        for sensor in tiny_dataset:
            x, y = proj.to_xy(sensor.lat, sensor.lon)
            assert 0 <= x <= 700
            assert 0 <= y <= 500

    def test_north_is_up(self, tiny_dataset):
        proj = MapProjection.fit(tiny_dataset)
        _, y_north = proj.to_xy(proj.max_lat, proj.min_lon)
        _, y_south = proj.to_xy(proj.min_lat, proj.min_lon)
        assert y_north < y_south

    def test_east_is_right(self, tiny_dataset):
        proj = MapProjection.fit(tiny_dataset)
        x_west, _ = proj.to_xy(proj.min_lat, proj.min_lon)
        x_east, _ = proj.to_xy(proj.min_lat, proj.max_lon)
        assert x_east > x_west

    def test_degenerate_extent_padded(self, tiny_dataset):
        co_located = tiny_dataset.subset(["a"])
        # Single point: projection must not divide by zero.
        proj = MapProjection.fit(co_located)
        x, y = proj.to_xy(co_located.sensor("a").lat, co_located.sensor("a").lon)
        assert 0 <= x and 0 <= y

    def test_graticule_within_bounds(self, tiny_dataset):
        proj = MapProjection.fit(tiny_dataset)
        lats, lons = proj.graticule_steps()
        assert all(proj.min_lat - 1e-9 <= v <= proj.max_lat + 1e-9 for v in lats)
        assert all(proj.min_lon - 1e-9 <= v <= proj.max_lon + 1e-9 for v in lons)
        assert 1 <= len(lats) <= 7


class TestRenderMap:
    def test_one_dot_per_sensor(self, tiny_dataset):
        svg = render_map(tiny_dataset).to_string()
        # 4 sensor dots + legend swatches (2 attributes... 3 attrs in tiny).
        assert svg.count("<circle") >= len(tiny_dataset)

    def test_tooltips_name_sensors(self, tiny_dataset):
        svg = render_map(tiny_dataset).to_string()
        for sensor in tiny_dataset:
            assert sensor.sensor_id in svg

    def test_highlight_color_used(self, tiny_dataset):
        svg = render_map(tiny_dataset, highlighted_sensors={"a", "b"}).to_string()
        assert svg.count(HIGHLIGHT_COLOR) >= 2

    def test_dim_unhighlighted(self, tiny_dataset):
        svg = render_map(
            tiny_dataset, highlighted_sensors={"a"}, dim_unhighlighted=True
        ).to_string()
        assert DIM_COLOR in svg

    def test_unknown_highlight_rejected(self, tiny_dataset):
        with pytest.raises(KeyError, match="ghost"):
            render_map(tiny_dataset, highlighted_sensors={"ghost"})

    def test_adjacency_edges_drawn(self, tiny_dataset):
        adjacency = build_proximity_graph(list(tiny_dataset), 2.0)
        plain = render_map(tiny_dataset).to_string()
        with_edges = render_map(tiny_dataset, adjacency=adjacency).to_string()
        assert with_edges.count("<line") > plain.count("<line")

    def test_legend_lists_attributes(self, tiny_dataset):
        svg = render_map(tiny_dataset).to_string()
        for attribute in tiny_dataset.attributes:
            assert attribute in svg

    def test_title(self, tiny_dataset):
        svg = render_map(tiny_dataset, title="Figure 1").to_string()
        assert "Figure 1" in svg
