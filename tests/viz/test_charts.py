"""Unit tests for analytical charts (sweep curves, support histograms)."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import SweepPoint
from repro.core.types import CAP
from repro.viz.charts import render_support_histogram, render_sweep_chart


def points(counts):
    return [
        SweepPoint("min_support", float(v), c, 0.001)
        for v, c in zip(range(1, len(counts) + 1), counts)
    ]


def cap(support):
    return CAP(
        sensor_ids=frozenset({"a", "b"}), attributes=frozenset({"x", "y"}), support=support
    )


class TestSweepChart:
    def test_renders_all_points(self):
        svg = render_sweep_chart(points([50, 30, 10])).to_string()
        assert svg.count("<circle") == 3
        assert "<polyline" in svg

    def test_tooltips_carry_values(self):
        svg = render_sweep_chart(points([50, 30])).to_string()
        assert "min_support=1 → 50 CAPs" in svg

    def test_axis_labels(self):
        svg = render_sweep_chart(points([5])).to_string()
        assert "min_support" in svg
        assert "#CAPs" in svg

    def test_custom_title(self):
        svg = render_sweep_chart(points([5]), title="my sweep").to_string()
        assert "my sweep" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_sweep_chart([])

    def test_all_zero_counts_ok(self):
        svg = render_sweep_chart(points([0, 0])).to_string()
        assert "<polyline" in svg


class TestSupportHistogram:
    def test_bars_present(self):
        caps = [cap(s) for s in (5, 6, 7, 20, 21, 40)]
        svg = render_support_histogram(caps, bins=4).to_string()
        # 1 frame rect + background + at least one bar
        assert svg.count("<rect") >= 3

    def test_empty_message(self):
        svg = render_support_histogram([]).to_string()
        assert "no CAPs" in svg

    def test_single_support_value(self):
        svg = render_support_histogram([cap(7), cap(7)], bins=3).to_string()
        assert "support 7" in svg or "7–" in svg or "<rect" in svg

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            render_support_histogram([cap(5)], bins=0)

    def test_range_labels(self):
        svg = render_support_histogram([cap(3), cap(30)]).to_string()
        assert ">3<" in svg and ">30<" in svg
