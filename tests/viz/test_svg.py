"""Unit tests for the SVG primitives."""

from __future__ import annotations

import pytest

from repro.viz.svg import SvgCanvas, escape


class TestEscape:
    def test_escapes_markup(self):
        assert escape("<b>&\"'") == "&lt;b&gt;&amp;&quot;&#x27;"

    def test_coerces_non_string(self):
        assert escape(42) == "42"


class TestSvgCanvas:
    def test_document_shape(self):
        canvas = SvgCanvas(100, 50)
        out = canvas.to_string()
        assert out.startswith("<svg")
        assert 'width="100"' in out
        assert 'viewBox="0 0 100 50"' in out
        assert out.endswith("</svg>")

    def test_background_rect_by_default(self):
        assert "<rect" in SvgCanvas(10, 10).to_string()
        assert "<rect" not in SvgCanvas(10, 10, background=None).to_string()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)

    def test_circle(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.circle(1, 2, 3, fill="#ff0000")
        assert '<circle cx="1" cy="2" r="3" fill="#ff0000"/>' in canvas.to_string()

    def test_attribute_name_mangling(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.line(0, 0, 1, 1, stroke_width=2)
        assert 'stroke-width="2"' in canvas.to_string()

    def test_none_attributes_skipped(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.circle(0, 0, 1, fill=None)
        assert "fill" not in canvas.to_string()

    def test_polyline(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.polyline([(0, 0), (5, 5), (10, 0)], stroke="#000")
        assert '<polyline points="0,0 5,5 10,0"' in canvas.to_string()

    def test_polyline_single_point_skipped(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.polyline([(0, 0)])
        assert "polyline" not in canvas.to_string()

    def test_text_escaped(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.text(0, 0, "<script>")
        assert "<script>" not in canvas.to_string()
        assert "&lt;script&gt;" in canvas.to_string()

    def test_attribute_values_escaped(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.circle(0, 0, 1, fill='"><script>')
        assert "<script>" not in canvas.to_string()

    def test_group_and_tooltip(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.group_open(class_="dot")
        canvas.circle(0, 0, 1)
        canvas.title_tooltip("sensor s1")
        canvas.group_close()
        out = canvas.to_string()
        assert '<g class="dot">' in out
        assert "<title>sensor s1</title>" in out

    def test_style_block(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.add_style("circle:hover { opacity: 0.5; }")
        assert "<style>" in canvas.to_string()

    def test_html_page(self):
        page = SvgCanvas(10, 10).to_html_page(title="T & Co")
        assert page.startswith("<!DOCTYPE html>")
        assert "T &amp; Co" in page
        assert "<svg" in page

    def test_save(self, tmp_path):
        canvas = SvgCanvas(10, 10)
        canvas.save(str(tmp_path / "out.svg"))
        assert (tmp_path / "out.svg").read_text().startswith("<svg")

    def test_coordinate_formatting_compact(self):
        canvas = SvgCanvas(10, 10, background=None)
        canvas.circle(1.5, 2.25, 3.123456)
        out = canvas.to_string()
        assert 'cx="1.5"' in out
        assert 'r="3.12"' in out
