"""Unit tests for the CAP tree search (MISCELA step 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evolving import extract_all_evolving
from repro.core.parameters import MiningParameters
from repro.core.search import filter_maximal, search_all, search_component
from repro.core.spatial import build_proximity_graph
from repro.core.types import CAP, EvolvingSet, Sensor, SensorDataset
from tests.conftest import make_timeline, step_series


def mine(dataset, params):
    evolving = extract_all_evolving(dataset, params)
    adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
    return search_all(list(dataset), adjacency, evolving, params)


class TestTinyGroundTruth:
    def test_finds_exactly_the_planted_caps(self, tiny_dataset, tiny_params):
        caps = mine(tiny_dataset, tiny_params)
        keys = {cap.key() for cap in caps}
        assert keys == {("a", "b"), ("c", "d")}

    def test_supports_match_construction(self, tiny_dataset, tiny_params):
        caps = {cap.key(): cap for cap in mine(tiny_dataset, tiny_params)}
        assert caps[("a", "b")].support == 3
        assert caps[("c", "d")].support == 2

    def test_evolving_indices_recorded(self, tiny_dataset, tiny_params):
        caps = {cap.key(): cap for cap in mine(tiny_dataset, tiny_params)}
        assert caps[("a", "b")].evolving_indices == (3, 7, 12)
        assert caps[("c", "d")].evolving_indices == (5, 9)

    def test_min_support_prunes(self, tiny_dataset, tiny_params):
        caps = mine(tiny_dataset, tiny_params.with_updates(min_support=3))
        assert {cap.key() for cap in caps} == {("a", "b")}

    def test_distance_threshold_disconnects(self, tiny_dataset, tiny_params):
        # a—b are ~110 m apart; shrink eta below that.
        caps = mine(tiny_dataset, tiny_params.with_updates(distance_threshold=0.05))
        assert caps == []

    def test_multi_attribute_restriction(self, tiny_dataset, tiny_params):
        # With the restriction removed, single-attribute sets qualify too —
        # but in tiny_dataset a and c (both temperature) are too far apart,
        # so the result set is unchanged except it is a superset in general.
        caps_multi = mine(tiny_dataset, tiny_params)
        caps_all = mine(tiny_dataset, tiny_params.with_updates(require_multi_attribute=False))
        assert {c.key() for c in caps_multi} <= {c.key() for c in caps_all}


class TestAttributeBounds:
    def _dataset_three_attrs(self):
        """Three co-located, co-evolving sensors with distinct attributes."""
        n = 12
        timeline = make_timeline(n)
        jumps = [2, 5, 8]
        sensors = [
            Sensor("t", "temperature", 43.0, -3.0),
            Sensor("h", "humidity", 43.0005, -3.0),
            Sensor("l", "light", 43.0, -3.0005),
        ]
        measurements = {
            "t": step_series(n, jumps),
            "h": step_series(n, jumps, base=60.0),
            "l": step_series(n, jumps, base=300.0),
        }
        return SensorDataset("three", timeline, sensors, measurements)

    def test_mu_two_blocks_triples(self):
        ds = self._dataset_three_attrs()
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=2
        )
        caps = mine(ds, params)
        assert all(cap.num_attributes <= 2 for cap in caps)
        assert {cap.key() for cap in caps} == {("h", "t"), ("l", "t"), ("h", "l")}

    def test_mu_three_allows_triple(self):
        ds = self._dataset_three_attrs()
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=3, min_support=2
        )
        keys = {cap.key() for cap in mine(ds, params)}
        assert ("h", "l", "t") in keys

    def test_max_sensors_bound(self):
        ds = self._dataset_three_attrs()
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=3,
            min_support=2, max_sensors=2,
        )
        caps = mine(ds, params)
        assert all(cap.size <= 2 for cap in caps)


class TestDirectionAware:
    def _dataset_opposite(self):
        """Two sensors that always move in opposite directions."""
        n = 14
        timeline = make_timeline(n)
        up = step_series(n, [3, 6, 10])
        down = 200.0 - up  # mirrored: decreases when `up` increases
        sensors = [
            Sensor("u", "temperature", 43.0, -3.0),
            Sensor("v", "humidity", 43.0005, -3.0),
        ]
        return SensorDataset("opp", timeline, sensors, {"u": up, "v": down})

    def test_direction_agnostic_counts_opposites(self):
        ds = self._dataset_opposite()
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=3
        )
        caps = mine(ds, params)
        assert len(caps) == 1
        assert caps[0].support == 3

    def test_direction_aware_keeps_consistent_opposites(self):
        # Opposite but *consistently* opposite still counts (relative
        # orientation −1 at every shared timestamp).
        ds = self._dataset_opposite()
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2,
            min_support=3, direction_aware=True,
        )
        caps = mine(ds, params)
        assert len(caps) == 1
        assert caps[0].support == 3

    def test_direction_aware_drops_inconsistent(self):
        """Mixed same/opposite movements split the support."""
        n = 14
        timeline = make_timeline(n)
        a = step_series(n, [2, 5, 8, 11])  # all increases
        b = np.full(n, 50.0)
        # b moves with a at 2 and 5 (up), against it at 8 and 11 (down).
        level = 50.0
        for i in range(1, n):
            if i in (2, 5):
                level += 5.0
            elif i in (8, 11):
                level -= 5.0
            b[i] = level
        ds = SensorDataset(
            "mixed", timeline,
            [Sensor("a", "x", 43.0, -3.0), Sensor("b", "y", 43.0005, -3.0)],
            {"a": a, "b": b},
        )
        agnostic = mine(ds, MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=2))
        aware = mine(ds, MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2,
            min_support=2, direction_aware=True))
        assert agnostic[0].support == 4
        assert aware[0].support == 2  # the best consistent orientation


class TestSearchComponentDirect:
    def test_isolated_component_yields_nothing(self):
        evolving = {"a": EvolvingSet(np.array([1, 2]), np.array([1, 1], dtype=np.int8))}
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=1
        )
        caps = search_component({"a"}, {"a": set()}, {"a": "t"}, evolving, params)
        assert caps == []

    def test_seed_below_support_pruned(self):
        evolving = {
            "a": EvolvingSet(np.array([1]), np.array([1], dtype=np.int8)),
            "b": EvolvingSet(np.array([1, 2, 3]), np.array([1, 1, 1], dtype=np.int8)),
        }
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=2
        )
        adjacency = {"a": {"b"}, "b": {"a"}}
        caps = search_component(
            {"a", "b"}, adjacency, {"a": "t", "b": "h"}, evolving, params
        )
        assert caps == []


class TestFilterMaximal:
    def _cap(self, ids, support=5):
        return CAP(
            sensor_ids=frozenset(ids),
            attributes=frozenset({"t", "h"}),
            support=support,
        )

    def test_subset_removed(self):
        small = self._cap({"a", "b"})
        big = self._cap({"a", "b", "c"})
        assert filter_maximal([small, big]) == [big]

    def test_incomparable_kept(self):
        one = self._cap({"a", "b"})
        two = self._cap({"c", "d"})
        assert set(c.key() for c in filter_maximal([one, two])) == {("a", "b"), ("c", "d")}

    def test_equal_sets_kept_once_each(self):
        # Same sensor set twice (e.g. direction variants) — both stay since
        # neither is a *strict* subset.
        one = self._cap({"a", "b"}, support=5)
        two = self._cap({"a", "b"}, support=3)
        assert len(filter_maximal([one, two])) == 2

    def test_empty(self):
        assert filter_maximal([]) == []
