"""Unit tests for MiningParameters validation and serialisation."""

from __future__ import annotations

import pytest

from repro.core.parameters import SEGMENTATION_METHODS, MiningParameters


def make(**overrides):
    defaults = dict(
        evolving_rate=1.0, distance_threshold=2.0, max_attributes=3, min_support=5
    )
    defaults.update(overrides)
    return MiningParameters(**defaults)


class TestValidation:
    def test_defaults_are_valid(self):
        p = make()
        assert p.max_delay == 0
        assert p.segmentation == "none"
        assert p.require_multi_attribute

    @pytest.mark.parametrize("rate", [-0.1, -5])
    def test_negative_evolving_rate(self, rate):
        with pytest.raises(ValueError, match="evolving_rate"):
            make(evolving_rate=rate)

    def test_zero_evolving_rate_allowed(self):
        assert make(evolving_rate=0.0).evolving_rate == 0.0

    @pytest.mark.parametrize("eta", [0.0, -1.0])
    def test_nonpositive_distance(self, eta):
        with pytest.raises(ValueError, match="distance_threshold"):
            make(distance_threshold=eta)

    def test_max_attributes_one_rejected_when_multi_required(self):
        with pytest.raises(ValueError, match="max_attributes"):
            make(max_attributes=1)

    def test_max_attributes_one_allowed_without_multi(self):
        p = make(max_attributes=1, require_multi_attribute=False)
        assert p.max_attributes == 1

    @pytest.mark.parametrize("psi", [0, -3])
    def test_min_support_positive(self, psi):
        with pytest.raises(ValueError, match="min_support"):
            make(min_support=psi)

    def test_max_sensors_bound(self):
        with pytest.raises(ValueError, match="max_sensors"):
            make(max_sensors=1)
        assert make(max_sensors=2).max_sensors == 2

    def test_unknown_segmentation(self):
        with pytest.raises(ValueError, match="segmentation"):
            make(segmentation="fourier")

    @pytest.mark.parametrize("method", SEGMENTATION_METHODS)
    def test_all_segmentation_methods_accepted(self, method):
        assert make(segmentation=method).segmentation == method

    def test_negative_segmentation_error(self):
        with pytest.raises(ValueError, match="segmentation_error"):
            make(segmentation_error=-0.5)

    def test_negative_delay(self):
        with pytest.raises(ValueError, match="max_delay"):
            make(max_delay=-1)

    def test_negative_per_attribute_rate(self):
        with pytest.raises(ValueError, match="override"):
            make(evolving_rate_per_attribute={"temperature": -1.0})


class TestBehaviour:
    def test_rate_for_uses_override(self):
        p = make(evolving_rate=1.0, evolving_rate_per_attribute={"pm25": 4.0})
        assert p.rate_for("pm25") == 4.0
        assert p.rate_for("temperature") == 1.0

    def test_with_updates_creates_new(self):
        p = make()
        q = p.with_updates(min_support=9)
        assert q.min_support == 9
        assert p.min_support == 5

    def test_equality_and_hash(self):
        assert make() == make()
        assert hash(make()) == hash(make())
        assert make(min_support=6) != make()

    def test_hash_includes_per_attribute_rates(self):
        a = make(evolving_rate_per_attribute={"x": 1.0})
        b = make(evolving_rate_per_attribute={"x": 2.0})
        assert hash(a) != hash(b) or a != b


class TestSerialisation:
    def test_round_trip(self):
        p = make(
            max_sensors=4,
            segmentation="bottom_up",
            segmentation_error=0.5,
            direction_aware=True,
            max_delay=2,
            evolving_rate_per_attribute={"pm25": 2.0},
        )
        assert MiningParameters.from_document(p.to_document()) == p

    def test_document_is_json_friendly(self):
        import json

        json.dumps(make().to_document())

    def test_unknown_field_rejected(self):
        doc = make().to_document()
        doc["bogus"] = 1
        with pytest.raises(ValueError, match="unknown"):
            MiningParameters.from_document(doc)

    def test_missing_required_field_rejected(self):
        doc = make().to_document()
        del doc["min_support"]
        with pytest.raises(ValueError, match="missing"):
            MiningParameters.from_document(doc)
