"""Property-based tests (hypothesis) for the mining core.

These pin down the invariants the reproduction's claims rest on:

* evolving-set extraction is monotone in ε and respects the threshold;
* segmentation honours its error budget and reconstruction is faithful;
* the tree search equals the exhaustive oracle on arbitrary small inputs;
* supports are anti-monotone under sensor-set extension;
* the proximity grid index equals brute force.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import naive_search
from repro.core.evolving import extract_evolving
from repro.core.parameters import MiningParameters
from repro.core.search import search_all
from repro.core.segmentation import (
    bottom_up_segmentation,
    reconstruct,
    sliding_window_segmentation,
    top_down_segmentation,
)
from repro.core.spatial import build_proximity_graph
from repro.core.types import Sensor, SensorDataset
from tests.conftest import make_timeline

# -- strategies ---------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

series_strategy = st.lists(finite_floats, min_size=2, max_size=60).map(
    lambda xs: np.array(xs, dtype=np.float64)
)


@st.composite
def small_mining_instance(draw):
    """A random dataset + parameters small enough for the naive oracle."""
    n_sensors = draw(st.integers(min_value=2, max_value=6))
    n_steps = draw(st.integers(min_value=4, max_value=24))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    attributes = ["t", "h", "p"]
    sensors = []
    measurements = {}
    for i in range(n_sensors):
        attribute = attributes[int(rng.integers(len(attributes)))]
        lat = 43.0 + float(rng.uniform(0, 0.02))
        lon = -3.0 + float(rng.uniform(0, 0.02))
        sensors.append(Sensor(f"s{i}", attribute, lat, lon))
        steps = np.where(
            rng.random(n_steps) < 0.4, rng.choice([-4.0, 4.0], size=n_steps), 0.0
        )
        steps[0] = 0.0
        measurements[f"s{i}"] = np.cumsum(steps)
    dataset = SensorDataset("prop", make_timeline(n_steps), sensors, measurements)
    psi = draw(st.integers(min_value=1, max_value=4))
    direction_aware = draw(st.booleans())
    params = MiningParameters(
        evolving_rate=2.0,
        distance_threshold=draw(st.sampled_from([0.5, 1.0, 3.0])),
        max_attributes=draw(st.integers(min_value=2, max_value=3)),
        min_support=psi,
        direction_aware=direction_aware,
    )
    return dataset, params


# -- evolving extraction --------------------------------------------------------


@given(series_strategy, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_evolving_threshold_respected(values, eps):
    ev = extract_evolving(values, eps)
    deltas = np.diff(values)
    for index, direction in zip(ev.indices, ev.directions):
        delta = deltas[index - 1]
        if eps == 0.0:
            assert abs(delta) > 0
        else:
            assert abs(delta) >= eps
        assert np.sign(delta) == direction


@given(series_strategy, st.floats(min_value=0.0, max_value=50.0), st.floats(min_value=0.0, max_value=50.0))
def test_evolving_monotone_in_epsilon(values, e1, e2):
    lo, hi = min(e1, e2), max(e1, e2)
    assert len(extract_evolving(values, hi)) <= len(extract_evolving(values, lo))


@given(series_strategy)
def test_evolving_indices_within_range(values):
    ev = extract_evolving(values, 1.0)
    if len(ev):
        assert ev.indices.min() >= 1
        assert ev.indices.max() < values.shape[0]


# -- segmentation -----------------------------------------------------------------


@given(series_strategy, st.floats(min_value=0.01, max_value=10.0))
@settings(max_examples=60)
def test_segmentation_error_budget_all_algorithms(values, budget):
    for algorithm in (
        sliding_window_segmentation,
        bottom_up_segmentation,
        top_down_segmentation,
    ):
        for seg in algorithm(values, budget):
            idx = np.arange(seg.start, seg.end + 1)
            approx = seg.value_start + seg.slope * (idx - seg.start)
            assert np.max(np.abs(values[idx] - approx)) <= budget + 1e-6


@given(series_strategy, st.floats(min_value=0.01, max_value=10.0))
@settings(max_examples=60)
def test_segmentation_covers_everything(values, budget):
    segs = bottom_up_segmentation(values, budget)
    rebuilt = reconstruct(segs, values.shape[0])
    assert not np.any(np.isnan(rebuilt))
    # Endpoints of every segment are the data values (up to float error in
    # the slope round-trip).
    for seg in segs:
        scale = max(1.0, abs(values[seg.start]), abs(values[seg.end]))
        assert abs(rebuilt[seg.start] - values[seg.start]) <= 1e-9 * scale
        assert abs(rebuilt[seg.end] - values[seg.end]) <= 1e-9 * scale


# -- search vs oracle ---------------------------------------------------------------


@given(small_mining_instance())
@settings(max_examples=40, deadline=None)
def test_tree_search_equals_oracle(instance):
    dataset, params = instance
    from repro.core.evolving import extract_all_evolving

    evolving = extract_all_evolving(dataset, params)
    adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
    fast = {(c.key(), c.support) for c in search_all(list(dataset), adjacency, evolving, params)}
    slow = {(c.key(), c.support) for c in naive_search(list(dataset), adjacency, evolving, params)}
    assert fast == slow


@given(small_mining_instance())
@settings(max_examples=30, deadline=None)
def test_support_anti_monotone(instance):
    dataset, params = instance
    from repro.core.evolving import extract_all_evolving

    evolving = extract_all_evolving(dataset, params)
    adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
    caps = search_all(list(dataset), adjacency, evolving, params)
    by_key = {c.key(): c for c in caps}
    for cap in caps:
        for other in caps:
            if cap.sensor_ids < other.sensor_ids:
                assert cap.support >= other.support


@given(small_mining_instance())
@settings(max_examples=30, deadline=None)
def test_caps_satisfy_definition(instance):
    """Every emitted CAP meets all three conditions of Section 2.1."""
    dataset, params = instance
    from repro.core.evolving import extract_all_evolving
    from repro.core.spatial import is_connected

    evolving = extract_all_evolving(dataset, params)
    adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
    for cap in search_all(list(dataset), adjacency, evolving, params):
        assert is_connected(adjacency, cap.sensor_ids)          # (1) spatially close
        assert cap.support >= params.min_support                 # (2) co-evolve often
        assert 2 <= cap.num_attributes <= params.max_attributes  # (3) multi-attribute
        attrs = {dataset.sensor(s).attribute for s in cap.sensor_ids}
        assert attrs == set(cap.attributes)
        # The recorded timestamps really are common evolving timestamps.
        for index in cap.evolving_indices:
            for sid in cap.sensor_ids:
                assert index in evolving[sid]


# -- spatial ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-60, max_value=60, allow_nan=False),
            st.floats(min_value=-170, max_value=170, allow_nan=False),
        ),
        min_size=2,
        max_size=25,
    ),
    st.floats(min_value=0.1, max_value=500.0),
)
@settings(max_examples=60)
def test_grid_index_equals_brute_force(coords, eta):
    sensors = [Sensor(f"s{i}", "t", lat, lon) for i, (lat, lon) in enumerate(coords)]
    grid = build_proximity_graph(sensors, eta, "grid")
    brute = build_proximity_graph(sensors, eta, "brute")
    assert grid == brute
