"""Satellite property: any batch split of a synthetic-city history is
byte-identical to a from-scratch mine of the concatenated history.

Stronger than the signature-set checks in ``test_streaming.py``: the CAP
*documents* — sensors, attributes, support, evolving indices, delays —
are serialised to canonical JSON and compared as bytes, under BOTH
evolving-set backends, and the two backends must agree with each other.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.miner import MiscelaMiner
from repro.core.parameters import MiningParameters
from repro.core.streaming import StreamingMiner
from repro.data.synthetic import generate_santander

STEPS = 60

PARAM_DOC = {
    "evolving_rate": 3.0,
    "distance_threshold": 0.35,
    "max_attributes": 3,
    "min_support": 3,
}


def canonical_bytes(result) -> bytes:
    """A canonical byte serialisation of a mining result's CAP documents."""
    documents = sorted(
        (cap.to_document() for cap in result.caps),
        key=lambda doc: json.dumps(doc, sort_keys=True),
    )
    return json.dumps(documents, sort_keys=True).encode("utf-8")


def split_points(cuts: list[int]) -> list[int]:
    return sorted(set(cuts))


@given(
    seed=st.integers(min_value=0, max_value=1_000),
    cuts=st.lists(
        st.integers(min_value=2, max_value=STEPS - 2), min_size=1, max_size=4
    ),
)
@settings(max_examples=15, deadline=None)
def test_any_split_is_byte_identical_across_backends(seed, cuts):
    city = generate_santander(seed=seed, neighbourhoods=2, steps=STEPS)
    points = split_points(cuts)
    per_backend: dict[str, bytes] = {}
    for backend in ("bitset", "array"):
        params = MiningParameters(**PARAM_DOC, evolving_backend=backend)
        batch = MiscelaMiner(params).mine(city)

        prefix = city.slice_time(
            city.timeline[0], city.timeline[points[0]], name=city.name
        )
        miner = StreamingMiner(params, prefix)
        bounds = points + [len(city.timeline)]
        for start, stop in zip(bounds, bounds[1:]):
            if start == stop:
                continue
            miner.extend(
                list(city.timeline[start:stop]),
                {sid: city.values(sid)[start:stop] for sid in city.sensor_ids},
            )
        incremental = miner.mine()

        assert canonical_bytes(incremental) == canonical_bytes(batch), (
            f"backend {backend}: split {points} diverged from batch mine"
        )
        per_backend[backend] = canonical_bytes(incremental)
    assert per_backend["bitset"] == per_backend["array"]
