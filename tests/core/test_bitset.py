"""Unit tests for the packed-bitmap evolving-set representation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import (
    BitsetEvolvingSet,
    and_words,
    bits_to_indices,
    pack_indices,
    popcount,
)
from repro.core.types import EvolvingSet


def make_set(indices, directions=None) -> EvolvingSet:
    idx = np.asarray(indices, dtype=np.int64)
    if directions is None:
        directions = np.ones(idx.shape, dtype=np.int8)
    return EvolvingSet(idx, np.asarray(directions, dtype=np.int8))


@st.composite
def index_sets(draw, max_index=200):
    n = draw(st.integers(min_value=0, max_value=40))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_index),
            min_size=n, max_size=n, unique=True,
        )
    )
    return np.array(sorted(indices), dtype=np.int64)


class TestPackRoundtrip:
    def test_empty(self):
        assert pack_indices(np.empty(0, dtype=np.int64), 0).size == 0
        assert bits_to_indices(np.empty(0, dtype=np.uint64)).size == 0

    def test_single_word(self):
        words = pack_indices(np.array([0, 5, 63]), 64)
        assert words.size == 1
        assert popcount(words) == 3
        np.testing.assert_array_equal(bits_to_indices(words), [0, 5, 63])

    def test_word_boundary(self):
        # 64 and 65 exercise the first bit of the second word.
        words = pack_indices(np.array([63, 64, 65]), 66)
        assert words.size == 2
        np.testing.assert_array_equal(bits_to_indices(words), [63, 64, 65])

    def test_horizon_not_multiple_of_64(self):
        words = pack_indices(np.array([0, 99]), 100)
        assert words.size == 2
        np.testing.assert_array_equal(bits_to_indices(words), [0, 99])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="indices must lie"):
            pack_indices(np.array([70]), 64)

    @given(index_sets())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, indices):
        horizon = int(indices[-1]) + 1 if len(indices) else 0
        words = pack_indices(indices, horizon)
        np.testing.assert_array_equal(bits_to_indices(words), indices)
        assert popcount(words) == len(indices)


class TestBitsetEvolvingSet:
    def test_from_arrays_directions(self):
        bs = BitsetEvolvingSet.from_arrays(
            np.array([1, 64, 70]), np.array([1, -1, 1], dtype=np.int8)
        )
        np.testing.assert_array_equal(bs.to_indices(), [1, 64, 70])
        np.testing.assert_array_equal(bs.to_directions(), [1, -1, 1])

    def test_empty(self):
        bs = BitsetEvolvingSet.from_arrays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int8)
        )
        assert len(bs) == 0
        assert not bs
        assert bs.to_indices().size == 0

    def test_lazy_bits_matches_arrays(self):
        ev = make_set([3, 64, 127, 128], [1, -1, -1, 1])
        np.testing.assert_array_equal(ev.bits.to_indices(), ev.indices)
        np.testing.assert_array_equal(ev.bits.to_directions(), ev.directions)
        # The property caches: same object on second access.
        assert ev.bits is ev.bits

    def test_intersect_count_differing_horizons(self):
        a = make_set([0, 5, 130])
        b = make_set([5, 7])  # covers one word only
        assert a.bits.intersect_count(b.bits) == 1
        assert b.bits.intersect_count(a.bits) == 1

    def test_and_words_truncates(self):
        a = pack_indices(np.array([1, 100]), 128)
        b = pack_indices(np.array([1, 2]), 64)
        np.testing.assert_array_equal(bits_to_indices(and_words(a, b)), [1])


class TestShift:
    @given(index_sets(), st.integers(min_value=-130, max_value=130))
    @settings(max_examples=80, deadline=None)
    def test_shift_matches_array_shift(self, indices, delay):
        horizon = 220
        ev = make_set(indices)
        shifted = ev.shift(delay, horizon)
        bits = ev.bits.shift(delay, horizon)
        np.testing.assert_array_equal(bits.to_indices(), shifted.indices)
        assert bits.horizon == horizon

    def test_shift_exact_word_multiple(self):
        ev = make_set([0, 63, 64])
        np.testing.assert_array_equal(
            ev.bits.shift(64, 200).to_indices(), [64, 127, 128]
        )
        np.testing.assert_array_equal(
            ev.bits.shift(-64, 200).to_indices(), [0]
        )

    def test_shift_clips_to_horizon(self):
        ev = make_set([10, 60])
        np.testing.assert_array_equal(ev.bits.shift(10, 65).to_indices(), [20])

    def test_shift_preserves_directions(self):
        ev = make_set([3, 70], [-1, 1])
        bits = ev.bits.shift(5, 100)
        np.testing.assert_array_equal(bits.to_indices(), [8, 75])
        np.testing.assert_array_equal(bits.to_directions(), [-1, 1])


class TestExtended:
    def test_word_append(self):
        ev = make_set([1, 50], [1, -1])
        grown = ev.bits.extended(
            np.array([64, 130]), np.array([-1, 1], dtype=np.int8), 192
        )
        np.testing.assert_array_equal(grown.to_indices(), [1, 50, 64, 130])
        np.testing.assert_array_equal(grown.to_directions(), [1, -1, -1, 1])
        assert grown.horizon == 192

    def test_empty_batch(self):
        ev = make_set([1])
        grown = ev.bits.extended(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int8), 300
        )
        np.testing.assert_array_equal(grown.to_indices(), [1])

    def test_shrink_rejected(self):
        ev = make_set([100])
        with pytest.raises(ValueError, match="cannot shrink"):
            ev.bits.extended(np.empty(0, dtype=np.int64), np.empty(0), 50)

    def test_overlapping_batch_rejected(self):
        ev = make_set([100])
        with pytest.raises(ValueError, match="after the existing horizon"):
            ev.bits.extended(np.array([99]), np.array([1], dtype=np.int8), 300)


class TestValidation:
    def test_mismatched_words_dirs(self):
        with pytest.raises(ValueError, match="equal length"):
            BitsetEvolvingSet(
                np.zeros(2, dtype=np.uint64), np.zeros(1, dtype=np.uint64), 128
            )

    def test_horizon_word_count_mismatch(self):
        with pytest.raises(ValueError, match="words"):
            BitsetEvolvingSet(
                np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint64), 128
            )
