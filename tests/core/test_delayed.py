"""Unit tests for time-delayed CAP mining (DPD 2020 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delayed import delayed_support, search_delayed
from repro.core.evolving import extract_all_evolving
from repro.core.miner import MiscelaMiner
from repro.core.parameters import MiningParameters
from repro.core.search import search_all
from repro.core.spatial import build_proximity_graph
from repro.core.types import EvolvingSet, Sensor, SensorDataset
from tests.conftest import make_timeline, step_series


def lagged_dataset(lag: int, n: int = 20) -> SensorDataset:
    """Sensor q reacts exactly ``lag`` steps after sensor p."""
    timeline = make_timeline(n)
    p_jumps = [3, 8, 13]
    q_jumps = [j + lag for j in p_jumps]
    sensors = [
        Sensor("p", "temperature", 43.0, -3.0),
        Sensor("q", "traffic_volume", 43.0005, -3.0),
    ]
    measurements = {
        "p": step_series(n, p_jumps),
        "q": step_series(n, q_jumps, base=100.0),
    }
    return SensorDataset("lagged", timeline, sensors, measurements)


def run_delayed(dataset, params, **kwargs):
    evolving = extract_all_evolving(dataset, params)
    adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
    return search_delayed(
        list(dataset), adjacency, evolving, params,
        horizon=dataset.num_timestamps, **kwargs,
    )


def params_with_delay(delta: int, psi: int = 3) -> MiningParameters:
    return MiningParameters(
        evolving_rate=1.0, distance_threshold=1.0, max_attributes=2,
        min_support=psi, max_delay=delta,
    )


class TestDelayedSupport:
    def test_known_lag(self):
        ds = lagged_dataset(lag=2)
        params = params_with_delay(2)
        evolving = extract_all_evolving(ds, params)
        common = delayed_support(evolving, {"p": 0, "q": 2}, ds.num_timestamps)
        np.testing.assert_array_equal(common, [3, 8, 13])

    def test_wrong_lag_empty(self):
        ds = lagged_dataset(lag=2)
        params = params_with_delay(2)
        evolving = extract_all_evolving(ds, params)
        assert delayed_support(evolving, {"p": 0, "q": 1}, ds.num_timestamps).size == 0

    def test_empty_mapping(self):
        assert delayed_support({}, {}, 10).size == 0


class TestSearchDelayed:
    def test_simultaneous_misses_lagged_pattern(self):
        ds = lagged_dataset(lag=2)
        simultaneous = MiscelaMiner(params_with_delay(0).with_updates(max_delay=0)).mine(ds)
        assert simultaneous.caps == []

    def test_delayed_finds_lagged_pattern(self):
        ds = lagged_dataset(lag=2)
        caps = run_delayed(ds, params_with_delay(2))
        assert len(caps) == 1
        cap = caps[0]
        assert cap.key() == ("p", "q")
        assert cap.support == 3
        assert cap.is_delayed
        assert cap.delays == {"p": 0, "q": 2}

    def test_delta_too_small_misses(self):
        ds = lagged_dataset(lag=3)
        caps = run_delayed(ds, params_with_delay(2))
        assert caps == []

    def test_seed_lagging_is_found(self):
        # Pattern where the lexicographically-first sensor is the LATE one:
        # rename so the seed (min id) lags.
        n = 20
        timeline = make_timeline(n)
        jumps = [4, 9, 14]
        sensors = [
            Sensor("a", "temperature", 43.0, -3.0),    # a reacts LATER
            Sensor("b", "traffic_volume", 43.0005, -3.0),
        ]
        measurements = {
            "a": step_series(n, [j + 2 for j in jumps]),
            "b": step_series(n, jumps, base=100.0),
        }
        ds = SensorDataset("seedlag", timeline, sensors, measurements)
        caps = run_delayed(ds, params_with_delay(2))
        assert len(caps) == 1
        assert caps[0].delays == {"a": 2, "b": 0}  # normalised, min delay 0

    def test_zero_delta_equals_simultaneous_search(self, tiny_dataset, tiny_params):
        evolving = extract_all_evolving(tiny_dataset, tiny_params)
        adjacency = build_proximity_graph(list(tiny_dataset), tiny_params.distance_threshold)
        simultaneous = search_all(list(tiny_dataset), adjacency, evolving, tiny_params)
        delayed = search_delayed(
            list(tiny_dataset), adjacency, evolving,
            tiny_params.with_updates(max_delay=0),
            horizon=tiny_dataset.num_timestamps,
        )
        assert {(c.key(), c.support) for c in simultaneous} == {
            (c.key(), c.support) for c in delayed
        }

    def test_emit_all_assignments_superset(self):
        ds = lagged_dataset(lag=0)  # simultaneous jumps: several delays may pass
        best = run_delayed(ds, params_with_delay(2, psi=1))
        every = run_delayed(ds, params_with_delay(2, psi=1), emit_all_assignments=True)
        assert len(every) >= len(best)
        best_keys = {c.key() for c in best}
        assert best_keys <= {c.key() for c in every}

    def test_direction_aware_rejected(self):
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2,
            min_support=1, max_delay=1, direction_aware=True,
        )
        ds = lagged_dataset(lag=1)
        with pytest.raises(NotImplementedError):
            run_delayed(ds, params)

    def test_miner_facade_routes_to_delayed(self):
        ds = lagged_dataset(lag=2)
        result = MiscelaMiner(params_with_delay(2)).mine(ds)
        assert len(result.caps) == 1
        assert result.caps[0].is_delayed
