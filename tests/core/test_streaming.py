"""Tests for streaming/incremental mining.

The central contract: a StreamingMiner fed any batch split of a dataset
produces exactly what the batch miner produces on the whole dataset.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.miner import MiscelaMiner
from repro.core.parameters import MiningParameters
from repro.core.streaming import StreamingMiner
from repro.core.types import SensorDataset
from repro.data.synthetic import generate_santander
from tests.conftest import make_timeline


def split_dataset(dataset: SensorDataset, cut: int):
    """(prefix dataset, tail timeline, tail measurements)."""
    prefix = dataset.slice_time(
        dataset.timeline[0], dataset.timeline[cut], name=dataset.name
    )
    tail_timeline = list(dataset.timeline[cut:])
    tail_values = {
        sid: dataset.values(sid)[cut:] for sid in dataset.sensor_ids
    }
    return prefix, tail_timeline, tail_values


def signature(result):
    return {(c.key(), c.support, c.evolving_indices) for c in result.caps}


@pytest.fixture(scope="module")
def full_dataset():
    return generate_santander(seed=13, neighbourhoods=3, steps=200)


@pytest.fixture(scope="module")
def params():
    return MiningParameters(
        evolving_rate=3.0, distance_threshold=0.35, max_attributes=3, min_support=5
    )


class TestIncrementalEqualsBatch:
    def test_single_append(self, full_dataset, params):
        prefix, tail_t, tail_v = split_dataset(full_dataset, 120)
        miner = StreamingMiner(params, prefix)
        miner.extend(tail_t, tail_v)
        batch = MiscelaMiner(params).mine(full_dataset)
        assert signature(miner.mine()) == signature(batch)

    def test_many_small_appends(self, full_dataset, params):
        prefix, tail_t, tail_v = split_dataset(full_dataset, 50)
        miner = StreamingMiner(params, prefix)
        step = 30
        for start in range(0, len(tail_t), step):
            miner.extend(
                tail_t[start : start + step],
                {sid: v[start : start + step] for sid, v in tail_v.items()},
            )
        batch = MiscelaMiner(params).mine(full_dataset)
        assert signature(miner.mine()) == signature(batch)
        assert miner.appends == 5
        assert miner.num_timestamps == full_dataset.num_timestamps

    def test_mine_between_appends(self, full_dataset, params):
        """Interleaved mining must match the batch result at each point."""
        prefix, tail_t, tail_v = split_dataset(full_dataset, 100)
        miner = StreamingMiner(params, prefix)
        assert signature(miner.mine()) == signature(MiscelaMiner(params).mine(prefix))
        miner.extend(tail_t, tail_v)
        assert signature(miner.mine()) == signature(
            MiscelaMiner(params).mine(full_dataset)
        )

    def test_delayed_mode(self, full_dataset):
        delayed = MiningParameters(
            evolving_rate=3.0, distance_threshold=0.35, max_attributes=3,
            min_support=5, max_delay=1, max_sensors=3,
        )
        prefix, tail_t, tail_v = split_dataset(full_dataset, 120)
        miner = StreamingMiner(delayed, prefix)
        miner.extend(tail_t, tail_v)
        batch = MiscelaMiner(delayed).mine(full_dataset)
        assert {(c.key(), c.support) for c in miner.mine().caps} == {
            (c.key(), c.support) for c in batch.caps
        }


class TestValidation:
    def test_segmentation_rejected(self, full_dataset):
        params = MiningParameters(
            evolving_rate=3.0, distance_threshold=0.35, max_attributes=3,
            min_support=5, segmentation="bottom_up", segmentation_error=0.5,
        )
        with pytest.raises(ValueError, match="segmentation"):
            StreamingMiner(params, full_dataset)

    def test_off_grid_batch_rejected(self, full_dataset, params):
        prefix, tail_t, tail_v = split_dataset(full_dataset, 150)
        miner = StreamingMiner(params, prefix)
        bad_t = [tail_t[0] + timedelta(minutes=7)] + tail_t[1:]
        with pytest.raises(ValueError, match="grid"):
            miner.extend(bad_t, tail_v)

    def test_missing_sensor_rejected(self, full_dataset, params):
        prefix, tail_t, tail_v = split_dataset(full_dataset, 150)
        miner = StreamingMiner(params, prefix)
        del tail_v[next(iter(tail_v))]
        with pytest.raises(ValueError, match="lacks measurements"):
            miner.extend(tail_t, tail_v)

    def test_wrong_length_batch_rejected(self, full_dataset, params):
        prefix, tail_t, tail_v = split_dataset(full_dataset, 150)
        miner = StreamingMiner(params, prefix)
        tail_v = dict(tail_v)
        first = next(iter(tail_v))
        tail_v[first] = tail_v[first][:-1]
        with pytest.raises(ValueError, match="length"):
            miner.extend(tail_t, tail_v)

    def test_empty_batch_rejected(self, full_dataset, params):
        miner = StreamingMiner(params, full_dataset)
        with pytest.raises(ValueError, match="non-empty"):
            miner.extend([], {})

    def test_dataset_snapshot_is_copy(self, full_dataset, params):
        miner = StreamingMiner(params, full_dataset)
        snap = miner.dataset()
        snap.values(snap.sensor_ids[0])[:] = 0.0
        assert signature(miner.mine()) == signature(
            MiscelaMiner(params).mine(full_dataset)
        )


@given(
    cut=st.integers(min_value=2, max_value=58),
    second_cut=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_property_any_split_equals_batch(cut, second_cut, seed):
    """Random dataset, random 2-batch split: incremental == batch."""
    rng = np.random.default_rng(seed)
    n = 60
    timeline = make_timeline(n)
    from repro.core.types import Sensor

    sensors = [
        Sensor("p", "temperature", 43.0, -3.0),
        Sensor("q", "humidity", 43.0005, -3.0),
        Sensor("r", "light", 43.0, -3.0006),
    ]
    measurements = {}
    for sid in ("p", "q", "r"):
        steps = np.where(rng.random(n) < 0.3, rng.choice([-4.0, 4.0], n), 0.0)
        steps[0] = 0.0
        values = np.cumsum(steps)
        # Sprinkle NaNs: incremental extraction must handle gaps at the
        # append boundary too.
        nan_mask = rng.random(n) < 0.05
        values[nan_mask] = np.nan
        measurements[sid] = values
    dataset = SensorDataset("prop-stream", timeline, sensors, measurements)
    params = MiningParameters(
        evolving_rate=2.0, distance_threshold=1.0, max_attributes=3, min_support=1
    )

    prefix, tail_t, tail_v = split_dataset(dataset, cut)
    miner = StreamingMiner(params, prefix)
    mid = min(second_cut, len(tail_t) - 1)
    if mid > 0:
        miner.extend(tail_t[:mid], {sid: v[:mid] for sid, v in tail_v.items()})
        miner.extend(tail_t[mid:], {sid: v[mid:] for sid, v in tail_v.items()})
    else:
        miner.extend(tail_t, tail_v)
    batch = MiscelaMiner(params).mine(dataset)
    assert signature(miner.mine()) == signature(batch)
