"""Unit tests for the core data model."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.types import (
    CAP,
    EvolvingSet,
    Sensor,
    SensorDataset,
    haversine_km,
)
from tests.conftest import make_timeline


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(43.0, -3.0, 43.0, -3.0) == 0.0

    def test_known_distance_paris_london(self):
        # Paris (48.8566, 2.3522) to London (51.5074, -0.1278) ≈ 343–344 km.
        d = haversine_km(48.8566, 2.3522, 51.5074, -0.1278)
        assert 340.0 < d < 348.0

    def test_symmetry(self):
        a = haversine_km(10.0, 20.0, -30.0, 40.0)
        b = haversine_km(-30.0, 40.0, 10.0, 20.0)
        assert a == pytest.approx(b)

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        d = haversine_km(40.0, 0.0, 41.0, 0.0)
        assert 110.0 < d < 112.5


class TestSensor:
    def test_valid_sensor(self):
        s = Sensor("s1", "temperature", 43.46, -3.80)
        assert s.sensor_id == "s1"
        assert s.attribute == "temperature"

    def test_distance_between_sensors(self):
        a = Sensor("a", "t", 43.0, -3.0)
        b = Sensor("b", "t", 43.0, -3.0)
        assert a.distance_km(b) == 0.0

    @pytest.mark.parametrize("lat", [-91.0, 91.0, 1000.0])
    def test_bad_latitude(self, lat):
        with pytest.raises(ValueError, match="latitude"):
            Sensor("s", "t", lat, 0.0)

    @pytest.mark.parametrize("lon", [-181.0, 181.0])
    def test_bad_longitude(self, lon):
        with pytest.raises(ValueError, match="longitude"):
            Sensor("s", "t", 0.0, lon)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="sensor_id"):
            Sensor("", "t", 0.0, 0.0)

    def test_empty_attribute_rejected(self):
        with pytest.raises(ValueError, match="attribute"):
            Sensor("s", "", 0.0, 0.0)

    def test_frozen(self):
        s = Sensor("s", "t", 0.0, 0.0)
        with pytest.raises(AttributeError):
            s.lat = 10.0  # type: ignore[misc]


def _simple_dataset(n=4):
    timeline = make_timeline(n)
    sensors = [Sensor("x", "temperature", 43.0, -3.0), Sensor("y", "light", 43.001, -3.0)]
    measurements = {
        "x": np.arange(n, dtype=float),
        "y": np.arange(n, dtype=float) * 2,
    }
    return SensorDataset("simple", timeline, sensors, measurements)


class TestSensorDataset:
    def test_basic_properties(self):
        ds = _simple_dataset(5)
        assert len(ds) == 2
        assert ds.num_timestamps == 5
        assert ds.interval == timedelta(hours=1)
        assert ds.sensor_ids == ("x", "y")
        assert ds.attributes == ("light", "temperature")

    def test_num_records_counts_non_nan(self):
        timeline = make_timeline(4)
        sensors = [Sensor("x", "t", 0.0, 0.0)]
        values = np.array([1.0, np.nan, 3.0, np.nan])
        ds = SensorDataset("d", timeline, sensors, {"x": values})
        assert ds.num_records == 2

    def test_duplicate_sensor_id_rejected(self):
        timeline = make_timeline(3)
        sensors = [Sensor("x", "t", 0.0, 0.0), Sensor("x", "h", 0.0, 0.0)]
        with pytest.raises(ValueError, match="duplicate"):
            SensorDataset("d", timeline, sensors, {"x": np.zeros(3)})

    def test_missing_measurements_rejected(self):
        timeline = make_timeline(3)
        with pytest.raises(ValueError, match="missing measurements"):
            SensorDataset("d", timeline, [Sensor("x", "t", 0, 0)], {})

    def test_wrong_length_rejected(self):
        timeline = make_timeline(3)
        with pytest.raises(ValueError, match="length"):
            SensorDataset("d", timeline, [Sensor("x", "t", 0, 0)], {"x": np.zeros(5)})

    def test_unknown_measurement_key_rejected(self):
        timeline = make_timeline(3)
        with pytest.raises(ValueError, match="unknown sensors"):
            SensorDataset(
                "d", timeline, [Sensor("x", "t", 0, 0)],
                {"x": np.zeros(3), "ghost": np.zeros(3)},
            )

    def test_uneven_timeline_rejected(self):
        timeline = make_timeline(3)
        timeline[2] = timeline[2] + timedelta(minutes=30)
        with pytest.raises(ValueError, match="evenly spaced"):
            SensorDataset("d", timeline, [Sensor("x", "t", 0, 0)], {"x": np.zeros(3)})

    def test_decreasing_timeline_rejected(self):
        timeline = [datetime(2016, 3, 2), datetime(2016, 3, 1)]
        with pytest.raises(ValueError):
            SensorDataset("d", timeline, [Sensor("x", "t", 0, 0)], {"x": np.zeros(2)})

    def test_attribute_registry_must_cover_sensors(self):
        timeline = make_timeline(3)
        with pytest.raises(ValueError, match="not in the registry"):
            SensorDataset(
                "d", timeline, [Sensor("x", "t", 0, 0)], {"x": np.zeros(3)},
                attributes=["other"],
            )

    def test_sensor_lookup_and_unknown(self):
        ds = _simple_dataset()
        assert ds.sensor("x").attribute == "temperature"
        with pytest.raises(KeyError, match="ghost"):
            ds.sensor("ghost")
        with pytest.raises(KeyError):
            ds.values("ghost")

    def test_contains_and_iter(self):
        ds = _simple_dataset()
        assert "x" in ds
        assert "ghost" not in ds
        assert [s.sensor_id for s in ds] == ["x", "y"]

    def test_sensors_with_attribute(self):
        ds = _simple_dataset()
        temps = ds.sensors_with_attribute("temperature")
        assert [s.sensor_id for s in temps] == ["x"]

    def test_slice_time(self):
        ds = _simple_dataset(10)
        start = ds.timeline[2]
        end = ds.timeline[7]
        sliced = ds.slice_time(start, end)
        assert sliced.num_timestamps == 5
        assert sliced.timeline[0] == start
        np.testing.assert_array_equal(sliced.values("x"), np.arange(2.0, 7.0))

    def test_slice_time_too_narrow(self):
        ds = _simple_dataset(10)
        with pytest.raises(ValueError, match="two timestamps"):
            ds.slice_time(ds.timeline[3], ds.timeline[3])

    def test_subset(self):
        ds = _simple_dataset()
        sub = ds.subset(["y"])
        assert sub.sensor_ids == ("y",)
        assert sub.num_timestamps == ds.num_timestamps

    def test_describe_matches_paper_table_fields(self):
        row = _simple_dataset().describe()
        assert set(row) >= {"name", "sensors", "records", "attributes", "start", "end"}


class TestEvolvingSet:
    def test_empty(self):
        ev = EvolvingSet.empty()
        assert len(ev) == 0
        assert not ev

    def test_membership_and_direction(self):
        ev = EvolvingSet(np.array([2, 5, 9]), np.array([1, -1, 1], dtype=np.int8))
        assert 5 in ev
        assert 4 not in ev
        assert ev.direction_at(5) == -1
        with pytest.raises(KeyError):
            ev.direction_at(4)

    def test_unsorted_indices_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            EvolvingSet(np.array([5, 2]), np.array([1, 1], dtype=np.int8))

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="directions"):
            EvolvingSet(np.array([1]), np.array([0], dtype=np.int8))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            EvolvingSet(np.array([1, 2]), np.array([1], dtype=np.int8))

    def test_intersect(self):
        a = EvolvingSet(np.array([1, 3, 5]), np.array([1, 1, 1], dtype=np.int8))
        b = EvolvingSet(np.array([3, 5, 7]), np.array([1, -1, 1], dtype=np.int8))
        np.testing.assert_array_equal(a.intersect_indices(b), [3, 5])

    def test_shift_clips_to_horizon(self):
        ev = EvolvingSet(np.array([1, 8]), np.array([1, 1], dtype=np.int8))
        shifted = ev.shift(3, horizon=10)
        np.testing.assert_array_equal(shifted.indices, [4])
        back = ev.shift(-2, horizon=10)
        np.testing.assert_array_equal(back.indices, [6])

    def test_shift_zero_is_identity(self):
        ev = EvolvingSet(np.array([1, 8]), np.array([1, 1], dtype=np.int8))
        assert ev.shift(0, 10) is ev

    def test_arrays_immutable(self):
        ev = EvolvingSet(np.array([1]), np.array([1], dtype=np.int8))
        with pytest.raises(ValueError):
            ev.indices[0] = 5


class TestCAP:
    def _cap(self, **kwargs):
        defaults = dict(
            sensor_ids=frozenset({"a", "b"}),
            attributes=frozenset({"t", "h"}),
            support=3,
            evolving_indices=(1, 4, 7),
        )
        defaults.update(kwargs)
        return CAP(**defaults)

    def test_basic(self):
        cap = self._cap()
        assert cap.size == 2
        assert cap.num_attributes == 2
        assert not cap.is_delayed
        assert cap.key() == ("a", "b")

    def test_single_sensor_rejected(self):
        with pytest.raises(ValueError, match="two sensors"):
            self._cap(sensor_ids=frozenset({"a"}))

    def test_negative_support_rejected(self):
        with pytest.raises(ValueError, match="support"):
            self._cap(support=-1, evolving_indices=())

    def test_indices_support_mismatch_rejected(self):
        with pytest.raises(ValueError, match="evolving_indices"):
            self._cap(support=5)

    def test_delayed_flag(self):
        cap = self._cap(delays={"a": 0, "b": 2})
        assert cap.is_delayed

    def test_document_round_trip(self):
        cap = self._cap(delays={"a": 0, "b": 1})
        doc = cap.to_document()
        restored = CAP.from_document(doc)
        assert restored == cap

    def test_document_shape_is_json_friendly(self):
        import json

        doc = self._cap().to_document()
        json.dumps(doc)  # must not raise
        assert doc["sensors"] == ["a", "b"]
        assert doc["support"] == 3
