"""Unit tests for the miner facades and MiningResult."""

from __future__ import annotations

import pytest

from repro.core.miner import MiningResult, MiscelaMiner, NaiveMiner
from repro.core.parameters import MiningParameters


class TestMiscelaMiner:
    def test_mine_returns_result_with_intermediates(self, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        assert result.dataset_name == "tiny"
        assert result.parameters == tiny_params
        assert result.num_caps == 2
        assert set(result.evolving) == {"a", "b", "c", "d"}
        assert set(result.adjacency) == {"a", "b", "c", "d"}
        assert result.elapsed_seconds > 0
        assert not result.from_cache

    def test_caps_sorted_by_support(self, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        supports = [cap.support for cap in result.caps]
        assert supports == sorted(supports, reverse=True)

    def test_components(self, tiny_dataset, tiny_params):
        comps = MiscelaMiner(tiny_params).components(tiny_dataset)
        assert sorted(sorted(c) for c in comps) == [["a", "b"], ["c", "d"]]

    def test_spatial_method_brute_same_result(self, tiny_dataset, tiny_params):
        grid = MiscelaMiner(tiny_params, spatial_method="grid").mine(tiny_dataset)
        brute = MiscelaMiner(tiny_params, spatial_method="brute").mine(tiny_dataset)
        assert {c.key() for c in grid.caps} == {c.key() for c in brute.caps}


class TestMiningResult:
    @pytest.fixture
    def result(self, tiny_dataset, tiny_params):
        return MiscelaMiner(tiny_params).mine(tiny_dataset)

    def test_caps_containing(self, result):
        assert {cap.key() for cap in result.caps_containing("a")} == {("a", "b")}
        assert result.caps_containing("ghost") == []

    def test_correlated_sensors_click_interaction(self, result):
        assert result.correlated_sensors("a") == {"b"}
        assert result.correlated_sensors("c") == {"d"}

    def test_document_round_trip(self, result):
        doc = result.to_document()
        restored = MiningResult.from_document(doc)
        assert restored.dataset_name == result.dataset_name
        assert restored.parameters == result.parameters
        assert {c.key() for c in restored.caps} == {c.key() for c in result.caps}
        assert restored.from_cache  # replayed results are flagged

    def test_document_json_serialisable(self, result):
        import json

        json.dumps(result.to_document())
