"""Baseline-vs-MISCELA equivalence tests.

The naive miner is the correctness oracle: on every dataset where it is
feasible, the tree search must return the identical CAP set (same sensor
sets, same supports, same evolving indices).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import naive_search
from repro.core.evolving import extract_all_evolving
from repro.core.miner import MiscelaMiner, NaiveMiner
from repro.core.parameters import MiningParameters
from repro.core.search import search_all
from repro.core.spatial import build_proximity_graph
from repro.core.types import Sensor, SensorDataset
from tests.conftest import make_timeline


def random_dataset(seed: int, n_sensors: int = 8, n_steps: int = 30) -> SensorDataset:
    """A random small dataset with clustered sensors and step-ish series."""
    rng = np.random.default_rng(seed)
    timeline = make_timeline(n_steps)
    attributes = ["temperature", "humidity", "pm25"]
    sensors = []
    measurements = {}
    for i in range(n_sensors):
        attribute = attributes[int(rng.integers(len(attributes)))]
        # Two loose clusters so both intra- and inter-component cases occur.
        cluster = i % 2
        lat = 43.0 + cluster * 0.5 + float(rng.uniform(0, 0.01))
        lon = -3.0 + float(rng.uniform(0, 0.01))
        sensors.append(Sensor(f"s{i}", attribute, lat, lon))
        steps = np.where(rng.random(n_steps) < 0.3, rng.choice([-5.0, 5.0], n_steps), 0.0)
        steps[0] = 0.0
        measurements[f"s{i}"] = 20.0 + np.cumsum(steps) + rng.normal(0, 0.1, n_steps)
    return SensorDataset(f"rand{seed}", timeline, sensors, measurements)


def caps_signature(caps):
    return {(cap.key(), cap.support, cap.evolving_indices) for cap in caps}


@pytest.mark.parametrize("seed", range(8))
def test_equivalence_random_datasets(seed):
    ds = random_dataset(seed)
    params = MiningParameters(
        evolving_rate=3.0, distance_threshold=2.0, max_attributes=3, min_support=2
    )
    evolving = extract_all_evolving(ds, params)
    adjacency = build_proximity_graph(list(ds), params.distance_threshold)
    fast = search_all(list(ds), adjacency, evolving, params)
    slow = naive_search(list(ds), adjacency, evolving, params)
    assert caps_signature(fast) == caps_signature(slow)


@pytest.mark.parametrize("seed", range(4))
def test_equivalence_direction_aware(seed):
    ds = random_dataset(seed, n_sensors=6, n_steps=25)
    params = MiningParameters(
        evolving_rate=3.0, distance_threshold=2.0, max_attributes=3,
        min_support=2, direction_aware=True,
    )
    evolving = extract_all_evolving(ds, params)
    adjacency = build_proximity_graph(list(ds), params.distance_threshold)
    fast = {(c.key(), c.support) for c in search_all(list(ds), adjacency, evolving, params)}
    slow = {(c.key(), c.support) for c in naive_search(list(ds), adjacency, evolving, params)}
    assert fast == slow


@pytest.mark.parametrize("psi", [1, 2, 4, 8])
def test_equivalence_across_min_support(psi):
    ds = random_dataset(99)
    params = MiningParameters(
        evolving_rate=3.0, distance_threshold=2.0, max_attributes=3, min_support=psi
    )
    evolving = extract_all_evolving(ds, params)
    adjacency = build_proximity_graph(list(ds), params.distance_threshold)
    fast = caps_signature(search_all(list(ds), adjacency, evolving, params))
    slow = caps_signature(naive_search(list(ds), adjacency, evolving, params))
    assert fast == slow


def test_equivalence_with_max_sensors():
    ds = random_dataset(7)
    params = MiningParameters(
        evolving_rate=3.0, distance_threshold=2.0, max_attributes=3,
        min_support=2, max_sensors=3,
    )
    evolving = extract_all_evolving(ds, params)
    adjacency = build_proximity_graph(list(ds), params.distance_threshold)
    fast = caps_signature(search_all(list(ds), adjacency, evolving, params))
    slow = caps_signature(naive_search(list(ds), adjacency, evolving, params))
    assert fast == slow


def test_component_size_guard():
    ds = random_dataset(0, n_sensors=10)
    params = MiningParameters(
        evolving_rate=3.0, distance_threshold=2.0, max_attributes=3, min_support=2
    )
    with pytest.raises(ValueError, match="exceeds"):
        NaiveMiner(params, max_component_size=3).mine(ds)


def test_naive_miner_rejects_delay():
    params = MiningParameters(
        evolving_rate=1.0, distance_threshold=1.0, max_attributes=2,
        min_support=1, max_delay=1,
    )
    with pytest.raises(NotImplementedError):
        NaiveMiner(params)


def test_miners_agree_on_tiny(tiny_dataset, tiny_params):
    fast = MiscelaMiner(tiny_params).mine(tiny_dataset)
    slow = NaiveMiner(tiny_params).mine(tiny_dataset)
    assert caps_signature(fast.caps) == caps_signature(slow.caps)
