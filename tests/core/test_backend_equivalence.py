"""Backend equivalence: the bitset fast path equals the array oracle.

``params.evolving_backend`` must never change *what* is mined, only how
fast.  These property tests run the tree search (simultaneous and
direction-aware), the delayed search (δ > 0), and the naive baseline over
randomized synthetic datasets under both backends and assert the CAP lists
are identical — sensor sets, supports, evolving indices, and delay
assignments — plus the edge cases the bit packing must survive (empty
evolving sets, timelines that are not a multiple of 64, all-NaN sensors).
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import co_evolution_rate
from repro.core.baseline import naive_search
from repro.core.delayed import delayed_support, search_delayed
from repro.core.evolving import co_evolution_count, extract_all_evolving
from repro.core.miner import MiscelaMiner
from repro.core.parameters import MiningParameters
from repro.core.search import search_all
from repro.core.spatial import build_proximity_graph
from repro.core.streaming import StreamingMiner
from repro.core.types import EvolvingSet, Sensor, SensorDataset


def cap_fingerprint(caps):
    """Full identity of a CAP list, including where the patterns co-evolve."""
    return [
        (sorted(c.sensor_ids), sorted(c.attributes), c.support,
         c.evolving_indices, dict(sorted(c.delays.items())))
        for c in caps
    ]


@st.composite
def mining_instances(draw):
    """A random dataset + parameters small enough to mine both ways."""
    n_sensors = draw(st.integers(min_value=2, max_value=6))
    # Deliberately straddle the 64-bit word boundary in both directions.
    n_steps = draw(st.sampled_from([8, 30, 63, 64, 65, 100, 130]))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    min_support = draw(st.integers(min_value=1, max_value=3))
    all_nan_sensor = draw(st.booleans())
    rng = np.random.default_rng(rng_seed)
    attributes = ["t", "h", "p"]
    sensors = []
    measurements = {}
    for i in range(n_sensors):
        attribute = attributes[int(rng.integers(len(attributes)))]
        lat = 43.0 + float(rng.uniform(0, 0.02))
        lon = -3.0 + float(rng.uniform(0, 0.02))
        sensors.append(Sensor(f"s{i}", attribute, lat, lon))
        steps = np.where(
            rng.random(n_steps) < 0.4, rng.choice([-4.0, 4.0], size=n_steps), 0.0
        )
        values = np.cumsum(steps)
        if all_nan_sensor and i == 0:
            values = np.full(n_steps, np.nan)
        measurements[f"s{i}"] = values
    timeline = [
        datetime(2024, 1, 1) + k * timedelta(hours=1) for k in range(n_steps)
    ]
    dataset = SensorDataset("equiv", timeline, sensors, measurements)
    params = MiningParameters(
        evolving_rate=2.0,
        distance_threshold=5.0,
        max_attributes=3,
        min_support=min_support,
        require_multi_attribute=draw(st.booleans()),
    )
    return dataset, params


def mine_both(dataset, params):
    results = {}
    for backend in ("array", "bitset"):
        miner = MiscelaMiner(params.with_updates(evolving_backend=backend))
        results[backend] = miner.mine(dataset).caps
    return results["array"], results["bitset"]


class TestSearchEquivalence:
    @given(mining_instances())
    @settings(max_examples=40, deadline=None)
    def test_simultaneous(self, instance):
        dataset, params = instance
        array_caps, bitset_caps = mine_both(dataset, params)
        assert cap_fingerprint(array_caps) == cap_fingerprint(bitset_caps)

    @given(mining_instances())
    @settings(max_examples=40, deadline=None)
    def test_direction_aware(self, instance):
        dataset, params = instance
        array_caps, bitset_caps = mine_both(
            dataset, params.with_updates(direction_aware=True)
        )
        assert cap_fingerprint(array_caps) == cap_fingerprint(bitset_caps)

    @given(mining_instances(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_delayed(self, instance, delta):
        dataset, params = instance
        array_caps, bitset_caps = mine_both(
            dataset, params.with_updates(max_delay=delta)
        )
        assert cap_fingerprint(array_caps) == cap_fingerprint(bitset_caps)

    @given(mining_instances())
    @settings(max_examples=25, deadline=None)
    def test_naive_baseline(self, instance):
        dataset, params = instance
        evolving = {}
        caps = {}
        for backend in ("array", "bitset"):
            p = params.with_updates(evolving_backend=backend)
            evolving = extract_all_evolving(dataset, p)
            adjacency = build_proximity_graph(list(dataset), p.distance_threshold)
            caps[backend] = naive_search(list(dataset), adjacency, evolving, p)
        assert cap_fingerprint(caps["array"]) == cap_fingerprint(caps["bitset"])

    @given(mining_instances())
    @settings(max_examples=25, deadline=None)
    def test_naive_baseline_direction_aware(self, instance):
        dataset, params = instance
        caps = {}
        for backend in ("array", "bitset"):
            p = params.with_updates(
                evolving_backend=backend, direction_aware=True
            )
            evolving = extract_all_evolving(dataset, p)
            adjacency = build_proximity_graph(list(dataset), p.distance_threshold)
            caps[backend] = naive_search(list(dataset), adjacency, evolving, p)
        assert cap_fingerprint(caps["array"]) == cap_fingerprint(caps["bitset"])


class TestHelperEquivalence:
    @given(mining_instances())
    @settings(max_examples=25, deadline=None)
    def test_co_evolution_count(self, instance):
        dataset, params = instance
        evolving = extract_all_evolving(dataset, params)
        ids = list(dataset.sensor_ids)
        assert co_evolution_count(evolving, ids, backend="array") == \
            co_evolution_count(evolving, ids, backend="bitset")

    @given(mining_instances())
    @settings(max_examples=25, deadline=None)
    def test_co_evolution_rate(self, instance):
        dataset, params = instance
        evolving = extract_all_evolving(dataset, params)
        ids = list(dataset.sensor_ids)
        a, b = evolving[ids[0]], evolving[ids[-1]]
        assert co_evolution_rate(a, b, backend="array") == \
            co_evolution_rate(a, b, backend="bitset")

    @given(mining_instances(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_delayed_support(self, instance, delay):
        dataset, params = instance
        evolving = extract_all_evolving(dataset, params)
        ids = list(dataset.sensor_ids)
        delays = {sid: (delay if i % 2 else 0) for i, sid in enumerate(ids)}
        horizon = dataset.num_timestamps
        np.testing.assert_array_equal(
            delayed_support(evolving, delays, horizon, backend="array"),
            delayed_support(evolving, delays, horizon, backend="bitset"),
        )


class TestEdgeCases:
    def _flat_dataset(self, n_steps):
        timeline = [
            datetime(2024, 1, 1) + k * timedelta(hours=1) for k in range(n_steps)
        ]
        sensors = [
            Sensor("a", "t", 43.0, -3.0),
            Sensor("b", "h", 43.0001, -3.0001),
        ]
        measurements = {
            "a": np.zeros(n_steps),
            "b": np.full(n_steps, np.nan),
        }
        return SensorDataset("edge", timeline, sensors, measurements)

    @pytest.mark.parametrize("n_steps", [2, 63, 64, 65, 127, 129])
    def test_empty_and_all_nan_sets(self, n_steps):
        """Flat + all-NaN sensors: both backends must agree on 'no CAPs'."""
        dataset = self._flat_dataset(n_steps)
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=5.0,
            max_attributes=3, min_support=1,
        )
        array_caps, bitset_caps = mine_both(dataset, params)
        assert array_caps == [] and bitset_caps == []

    def test_empty_evolving_set_bits(self):
        empty = EvolvingSet.empty()
        assert empty.bits.count() == 0
        assert co_evolution_rate(empty, empty) == 0.0

    @pytest.mark.parametrize("n_steps", [63, 64, 65, 130])
    def test_word_boundary_timelines(self, n_steps):
        """Evolutions at the last timeline step survive the packing."""
        timeline = [
            datetime(2024, 1, 1) + k * timedelta(hours=1) for k in range(n_steps)
        ]
        values = np.zeros(n_steps)
        values[-1] = 10.0  # single evolution at the final index
        sensors = [
            Sensor("a", "t", 43.0, -3.0),
            Sensor("b", "h", 43.0001, -3.0001),
        ]
        measurements = {"a": values, "b": values.copy()}
        dataset = SensorDataset("boundary", timeline, sensors, measurements)
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=5.0,
            max_attributes=3, min_support=1,
        )
        array_caps, bitset_caps = mine_both(dataset, params)
        assert cap_fingerprint(array_caps) == cap_fingerprint(bitset_caps)
        assert len(bitset_caps) == 1
        assert bitset_caps[0].evolving_indices == (n_steps - 1,)

    def test_streaming_incremental_bits_match_batch(self):
        """After extends, the incrementally-appended bitmaps equal a re-pack."""
        rng = np.random.default_rng(7)
        n0, batch = 70, 40
        timeline = [
            datetime(2024, 1, 1) + k * timedelta(hours=1) for k in range(n0)
        ]
        sensors = [
            Sensor("a", "t", 43.0, -3.0),
            Sensor("b", "h", 43.0001, -3.0001),
        ]
        series = {
            sid: np.cumsum(rng.choice([-3.0, 0.0, 3.0], size=n0 + 2 * batch))
            for sid in ("a", "b")
        }
        dataset = SensorDataset(
            "stream", timeline, sensors, {sid: v[:n0] for sid, v in series.items()}
        )
        params = MiningParameters(
            evolving_rate=2.0, distance_threshold=5.0,
            max_attributes=3, min_support=1,
        )
        miner = StreamingMiner(params, dataset)
        start = timeline[-1]
        for step in range(2):
            lo = n0 + step * batch
            batch_timeline = [
                start + (step * batch + k + 1) * timedelta(hours=1)
                for k in range(batch)
            ]
            miner.extend(
                batch_timeline,
                {sid: v[lo : lo + batch] for sid, v in series.items()},
            )
        for sid in ("a", "b"):
            es = miner._evolving[sid]
            np.testing.assert_array_equal(es.bits.to_indices(), es.indices)
            np.testing.assert_array_equal(es.bits.to_directions(), es.directions)
        # And the mined result equals a batch miner over the full series.
        batch_result = MiscelaMiner(params).mine(miner.dataset())
        assert cap_fingerprint(miner.mine().caps) == cap_fingerprint(
            batch_result.caps
        )
