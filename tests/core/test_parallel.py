"""The parallel engine's contract: any worker count, identical CAPs.

``MiningParameters.n_jobs`` selects an execution engine, never a result:
these tests hold :mod:`repro.core.parallel` to byte-identical CAP lists
(same order, same supports, same evolving indices and delays) against the
serial path for every search mode — simultaneous, direction-aware, and
delayed — plus the degenerate shapes the sharder must survive (nothing but
isolated sensors, and one giant component that forces the seed-split
path).  The shard planner and the zero-copy evolving-set handoff get unit
tests of their own.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import naive_search
from repro.core.evolving import extract_all_evolving
from repro.core.miner import MiscelaMiner, MiningResult
from repro.core.parallel import (
    MiningCancelled,
    MiningControl,
    PackedEvolvingStore,
    plan_shards,
    resolve_jobs,
)
from repro.core.parameters import MiningParameters
from repro.core.search import search_all
from repro.core.spatial import build_proximity_graph, connected_components
from repro.core.types import EvolvingSet, Sensor, SensorDataset


def cap_fingerprint(caps):
    return [
        (sorted(c.sensor_ids), sorted(c.attributes), c.support,
         c.evolving_indices, dict(sorted(c.delays.items())))
        for c in caps
    ]


def random_dataset(seed: int, n_clusters: int = 3, cluster_size: int = 4,
                   n_steps: int = 90) -> SensorDataset:
    """Several ~200 m clusters spaced ~20 km apart (one component each)."""
    rng = np.random.default_rng(seed)
    attributes = ["t", "h", "p"]
    sensors, measurements = [], {}
    for cluster in range(n_clusters):
        base_lat = 43.0 + 0.2 * cluster
        driver = np.where(
            rng.random(n_steps) < 0.35, rng.choice([-4.0, 4.0], size=n_steps), 0.0
        ).cumsum()
        for k in range(cluster_size):
            sid = f"c{cluster}s{k}"
            attribute = attributes[int(rng.integers(len(attributes)))]
            sensors.append(
                Sensor(sid, attribute,
                       base_lat + float(rng.uniform(0, 0.002)),
                       -3.0 + float(rng.uniform(0, 0.002)))
            )
            private = np.where(
                rng.random(n_steps) < 0.15, rng.choice([-4.0, 4.0], size=n_steps), 0.0
            ).cumsum()
            measurements[sid] = driver + private + rng.normal(0, 0.1, n_steps)
    timeline = [datetime(2024, 1, 1) + i * timedelta(hours=1) for i in range(n_steps)]
    return SensorDataset(f"par-{seed}", timeline, sensors, measurements)


def base_params(**overrides) -> MiningParameters:
    defaults = dict(
        evolving_rate=2.0, distance_threshold=1.0,
        max_attributes=3, min_support=3,
    )
    defaults.update(overrides)
    return MiningParameters(**defaults)


class TestResolveJobs:
    def test_explicit_counts_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_zero_means_available_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_jobs(-1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n_jobs"):
            base_params(n_jobs=-2)


class TestParametersSerialisation:
    def test_n_jobs_excluded_from_document(self):
        """n_jobs never changes the result, so it must not split cache keys."""
        doc = base_params(n_jobs=4).to_document()
        assert "n_jobs" not in doc
        assert doc == base_params().to_document()

    def test_n_jobs_accepted_by_from_document(self):
        doc = base_params().to_document()
        doc["n_jobs"] = 4
        assert MiningParameters.from_document(doc).n_jobs == 4


class TestPackedEvolvingStore:
    def test_round_trip_exact(self):
        rng = np.random.default_rng(5)
        evolving = {}
        for i, n in enumerate((0, 1, 63, 64, 65, 130)):
            indices = np.flatnonzero(rng.random(n) < 0.4).astype(np.int64)
            directions = rng.choice(np.array([-1, 1], dtype=np.int8), size=indices.size)
            evolving[f"s{i}"] = EvolvingSet(indices, directions)
        store = PackedEvolvingStore.pack(evolving)
        rebuilt = store.unpack()
        assert set(rebuilt) == set(evolving)
        for sid, original in evolving.items():
            np.testing.assert_array_equal(rebuilt[sid].indices, original.indices)
            np.testing.assert_array_equal(rebuilt[sid].directions, original.directions)
            np.testing.assert_array_equal(
                rebuilt[sid].bits.words, original.bits.words
            )
            np.testing.assert_array_equal(rebuilt[sid].bits.dirs, original.bits.dirs)

    def test_bitmaps_are_views_into_flat_buffers(self):
        """The zero-copy claim: unpacked words share memory with the store."""
        evolving = {
            "a": EvolvingSet(np.array([1, 5, 70]), np.array([1, -1, 1], dtype=np.int8)),
            "b": EvolvingSet(np.array([2, 64]), np.array([1, 1], dtype=np.int8)),
        }
        store = PackedEvolvingStore.pack(evolving)
        rebuilt = store.unpack()
        for sid in evolving:
            assert np.shares_memory(rebuilt[sid].bits.words, store.words)
            assert np.shares_memory(rebuilt[sid].bits.dirs, store.dirs)


class TestShardPlanner:
    def _inputs(self, dataset, params):
        evolving = extract_all_evolving(dataset, params)
        adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
        components = [
            sorted(c) for c in connected_components(adjacency) if len(c) >= 2
        ]
        return adjacency, evolving, components

    def test_units_cover_every_component_exactly_once(self):
        dataset = random_dataset(1, n_clusters=4)
        params = base_params()
        adjacency, evolving, components = self._inputs(dataset, params)
        shards = plan_shards(components, adjacency, evolving, params, n_workers=3)
        seen_components = {}
        for shard in shards:
            for unit in shard:
                if unit.seeds is None:
                    assert unit.component_index not in seen_components
                    seen_components[unit.component_index] = set(
                        components[unit.component_index]
                    )
                else:
                    seen_components.setdefault(unit.component_index, set()).update(
                        unit.seeds
                    )
        assert {
            ci: set(component) for ci, component in enumerate(components)
        } == seen_components

    def test_giant_component_is_seed_split(self):
        dataset = random_dataset(2, n_clusters=1, cluster_size=10)
        params = base_params()
        adjacency, evolving, components = self._inputs(dataset, params)
        assert len(components) == 1
        shards = plan_shards(components, adjacency, evolving, params, n_workers=4)
        units = [unit for shard in shards for unit in shard]
        assert len(units) > 1
        assert all(unit.seeds is not None for unit in units)
        # The split is a partition of the component in rank runs.
        all_seeds = [sid for unit in sorted(units, key=lambda u: u.tag)
                     for sid in unit.seeds]
        assert all_seeds == components[0]

    def test_loads_are_balanced_not_round_robin(self):
        dataset = random_dataset(3, n_clusters=6, cluster_size=5)
        params = base_params()
        adjacency, evolving, components = self._inputs(dataset, params)
        shards = plan_shards(components, adjacency, evolving, params, n_workers=3)
        loads = [sum(unit.cost for unit in shard) for shard in shards]
        biggest_unit = max(
            unit.cost for shard in shards for unit in shard
        )
        # Greedy LPT bound: no shard exceeds the fair share by more than
        # one unit.
        assert max(loads) <= sum(loads) / len(loads) + biggest_unit + 1e-9

    def test_unsplittable_keeps_components_whole(self):
        dataset = random_dataset(2, n_clusters=1, cluster_size=10)
        params = base_params()
        adjacency, evolving, components = self._inputs(dataset, params)
        shards = plan_shards(
            components, adjacency, evolving, params, n_workers=4, splittable=False
        )
        units = [unit for shard in shards for unit in shard]
        assert len(units) == 1 and units[0].seeds is None


class TestShardPlannerProperties:
    """Invariants the distributed job planner's correctness rests on.

    A shard plan that drops, duplicates, or reorders a seed silently
    corrupts a distributed mine (dropped CAPs or double-counted ones that
    only dedup hides), and a plan that differs between the planning attempt
    and a post-crash replanning attempt breaks
    ``DurableJobStore.finish_planning``'s idempotent-replan contract.  So:
    for any input, planning is a pure function and the units partition
    every component's seed set exactly once.
    """

    @staticmethod
    def _fingerprint(shards):
        return [
            [
                (u.component_index,
                 None if u.seeds is None else tuple(u.seeds),
                 u.first_rank)
                for u in shard
            ]
            for shard in shards
        ]

    @given(
        seed=st.integers(min_value=0, max_value=40),
        n_clusters=st.integers(min_value=1, max_value=5),
        cluster_size=st.integers(min_value=2, max_value=8),
        n_workers=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_deterministic_and_partitions_every_seed_exactly_once(
        self, seed, n_clusters, cluster_size, n_workers
    ):
        dataset = random_dataset(
            seed, n_clusters=n_clusters, cluster_size=cluster_size, n_steps=40
        )
        params = base_params()
        evolving = extract_all_evolving(dataset, params)
        adjacency = build_proximity_graph(
            list(dataset), params.distance_threshold
        )
        components = [
            sorted(c) for c in connected_components(adjacency) if len(c) >= 2
        ]
        shards = plan_shards(
            components, adjacency, evolving, params, n_workers=n_workers
        )
        replay = plan_shards(
            components, adjacency, evolving, params, n_workers=n_workers
        )
        # Pure function: a replanning attempt reproduces the plan bit for bit.
        assert self._fingerprint(shards) == self._fingerprint(replay)
        # Exactly-once partition, counted with multiplicity: a seed assigned
        # to two units would be mined twice, one assigned to none never.
        assigned: list[tuple[int, str]] = []
        for shard in shards:
            for unit in shard:
                members = (
                    components[unit.component_index]
                    if unit.seeds is None
                    else unit.seeds
                )
                assigned.extend((unit.component_index, sid) for sid in members)
        expected = [
            (ci, sid)
            for ci, component in enumerate(components)
            for sid in component
        ]
        assert sorted(assigned) == sorted(expected)


class TestParallelEquivalence:
    """n_jobs=1 and n_jobs=4 must produce identical CAP lists."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_simultaneous(self, seed):
        dataset = random_dataset(seed)
        params = base_params()
        serial = MiscelaMiner(params).mine(dataset).caps
        parallel = MiscelaMiner(params.with_updates(n_jobs=4)).mine(dataset).caps
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_direction_aware(self, seed):
        dataset = random_dataset(seed)
        params = base_params(direction_aware=True)
        serial = MiscelaMiner(params).mine(dataset).caps
        parallel = MiscelaMiner(params.with_updates(n_jobs=4)).mine(dataset).caps
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("delta", [1, 2])
    def test_delayed(self, seed, delta):
        dataset = random_dataset(seed, n_clusters=2, cluster_size=3)
        params = base_params(max_delay=delta)
        serial = MiscelaMiner(params).mine(dataset).caps
        parallel = MiscelaMiner(params.with_updates(n_jobs=4)).mine(dataset).caps
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)

    def test_array_backend(self):
        dataset = random_dataset(4)
        params = base_params(evolving_backend="array")
        serial = MiscelaMiner(params).mine(dataset).caps
        parallel = MiscelaMiner(params.with_updates(n_jobs=3)).mine(dataset).caps
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)

    def test_naive_baseline(self):
        dataset = random_dataset(5, n_clusters=3, cluster_size=4)
        params = base_params()
        evolving = extract_all_evolving(dataset, params)
        adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
        serial = naive_search(list(dataset), adjacency, evolving, params)
        parallel = naive_search(
            list(dataset), adjacency, evolving, params.with_updates(n_jobs=3)
        )
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)

    def test_naive_oversized_component_still_raises(self):
        dataset = random_dataset(2, n_clusters=1, cluster_size=10)
        params = base_params(n_jobs=3)
        evolving = extract_all_evolving(dataset, params)
        adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
        with pytest.raises(ValueError, match="exceeds the naive"):
            naive_search(
                list(dataset), adjacency, evolving, params, max_component_size=4
            )

    def test_n_jobs_zero_uses_all_cores(self):
        dataset = random_dataset(0)
        params = base_params()
        serial = MiscelaMiner(params).mine(dataset).caps
        parallel = MiscelaMiner(params.with_updates(n_jobs=0)).mine(dataset).caps
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)


class TestEdgeShapes:
    def test_only_isolated_sensors(self):
        """No component reaches size 2: the engine must return [] quietly."""
        n = 30
        timeline = [datetime(2024, 1, 1) + i * timedelta(hours=1) for i in range(n)]
        sensors = [
            Sensor(f"s{i}", "t", 40.0 + i, -3.0) for i in range(4)
        ]
        values = np.where(np.arange(n) % 3 == 0, 5.0, 0.0).cumsum()
        dataset = SensorDataset(
            "isolated", timeline, sensors,
            {s.sensor_id: values.copy() for s in sensors},
        )
        params = base_params(n_jobs=4)
        assert MiscelaMiner(params).mine(dataset).caps == []
        assert MiscelaMiner(params.with_updates(max_delay=1)).mine(dataset).caps == []

    def test_single_giant_component_seed_split_path(self):
        """One component, many seeds: the root-branch split must be exact."""
        dataset = random_dataset(7, n_clusters=1, cluster_size=12, n_steps=80)
        params = base_params(max_sensors=4)
        adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
        assert len([c for c in connected_components(adjacency) if len(c) >= 2]) == 1
        serial = MiscelaMiner(params).mine(dataset).caps
        parallel = MiscelaMiner(params.with_updates(n_jobs=4)).mine(dataset).caps
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)

    def test_empty_evolving_sets_cross_the_boundary(self):
        n = 70
        timeline = [datetime(2024, 1, 1) + i * timedelta(hours=1) for i in range(n)]
        active = np.where(np.arange(n) % 4 == 0, 5.0, 0.0).cumsum()
        sensors = [
            Sensor("a", "t", 43.0, -3.0),
            Sensor("b", "h", 43.0001, -3.0),
            Sensor("c", "p", 43.0002, -3.0),
        ]
        measurements = {
            "a": active, "b": active.copy(), "c": np.zeros(n),  # c never evolves
        }
        dataset = SensorDataset("empty-set", timeline, sensors, measurements)
        params = base_params(min_support=2)
        serial = MiscelaMiner(params).mine(dataset).caps
        parallel = MiscelaMiner(params.with_updates(n_jobs=2)).mine(dataset).caps
        assert cap_fingerprint(serial) == cap_fingerprint(parallel)
        assert serial  # a+b must co-evolve


class TestMiningResultIndex:
    def test_caps_containing_matches_linear_scan(self):
        dataset = random_dataset(1)
        params = base_params()
        result = MiscelaMiner(params).mine(dataset)
        assert result.caps
        for sid in dataset.sensor_ids:
            indexed = result.caps_containing(sid)
            scanned = [cap for cap in result.caps if sid in cap.sensor_ids]
            assert indexed == scanned

    def test_index_survives_document_round_trip(self):
        dataset = random_dataset(1)
        result = MiscelaMiner(base_params()).mine(dataset)
        replayed = MiningResult.from_document(result.to_document())
        sid = next(iter(result.caps[0].sensor_ids))
        assert cap_fingerprint(replayed.caps_containing(sid)) == cap_fingerprint(
            result.caps_containing(sid)
        )


class TestMiningControl:
    """The control hooks: identical CAPs, monotone progress, prompt cancel."""

    def test_serial_control_path_identical(self):
        dataset = random_dataset(3)
        params = base_params()  # n_jobs=1: the in-process component loop
        plain = MiscelaMiner(params).mine(dataset).caps
        ticks: list[tuple[int, int]] = []
        controlled = MiscelaMiner(params).mine(
            dataset, control=MiningControl(progress=lambda d, t: ticks.append((d, t)))
        ).caps
        assert cap_fingerprint(plain) == cap_fingerprint(controlled)
        # One tick per component, counting up to completion.
        assert ticks == [(i + 1, len(ticks)) for i in range(len(ticks))]
        assert ticks[-1][0] == ticks[-1][1]

    def test_pooled_control_path_identical(self):
        dataset = random_dataset(3)
        params = base_params()
        plain = MiscelaMiner(params).mine(dataset).caps
        ticks: list[tuple[int, int]] = []
        controlled = MiscelaMiner(params.with_updates(n_jobs=4)).mine(
            dataset, control=MiningControl(progress=lambda d, t: ticks.append((d, t)))
        ).caps
        assert cap_fingerprint(plain) == cap_fingerprint(controlled)
        assert ticks and ticks[-1][0] == ticks[-1][1]
        assert [d for d, _t in ticks] == list(range(1, len(ticks) + 1))

    def test_delayed_control_path_identical(self):
        dataset = random_dataset(1, n_clusters=2, cluster_size=3)
        params = base_params(max_delay=1)
        plain = MiscelaMiner(params).mine(dataset).caps
        controlled = MiscelaMiner(params).mine(
            dataset, control=MiningControl(progress=lambda d, t: None)
        ).caps
        assert cap_fingerprint(plain) == cap_fingerprint(controlled)

    def test_cancellation_raises(self):
        dataset = random_dataset(3)
        control = MiningControl(should_cancel=lambda: True)
        with pytest.raises(MiningCancelled):
            MiscelaMiner(base_params()).mine(dataset, control=control)

    def test_cancellation_mid_run_stops_between_components(self):
        dataset = random_dataset(3)
        seen: list[int] = []

        def progress(done: int, total: int) -> None:
            seen.append(done)

        control = MiningControl(
            progress=progress, should_cancel=lambda: len(seen) >= 1
        )
        with pytest.raises(MiningCancelled):
            MiscelaMiner(base_params()).mine(dataset, control=control)
        assert len(seen) == 1  # stopped at the first post-component checkpoint
