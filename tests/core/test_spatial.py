"""Unit tests for the spatial substrate (MISCELA step 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spatial import (
    GridIndex,
    build_proximity_graph,
    connected_components,
    component_of,
    haversine_matrix,
    is_connected,
    subgraph,
)
from repro.core.types import Sensor


def line_of_sensors(n: int, spacing_deg: float = 0.01, lat: float = 40.0) -> list[Sensor]:
    """Sensors spaced ``spacing_deg`` of longitude apart along one parallel."""
    return [Sensor(f"s{i}", "t", lat, i * spacing_deg) for i in range(n)]


class TestHaversineMatrix:
    def test_diagonal_zero_and_symmetric(self):
        sensors = line_of_sensors(4)
        m = haversine_matrix(sensors)
        np.testing.assert_allclose(np.diag(m), 0.0, atol=1e-9)
        np.testing.assert_allclose(m, m.T, atol=1e-9)

    def test_matches_pairwise_distance(self):
        sensors = line_of_sensors(3)
        m = haversine_matrix(sensors)
        assert m[0, 2] == pytest.approx(sensors[0].distance_km(sensors[2]), rel=1e-9)


class TestGridIndex:
    def test_neighbours_match_brute_force(self):
        rng = np.random.default_rng(7)
        sensors = [
            Sensor(f"s{i}", "t", 40.0 + rng.uniform(-0.1, 0.1), 3.0 + rng.uniform(-0.1, 0.1))
            for i in range(60)
        ]
        eta = 3.0
        index = GridIndex(sensors, eta)
        for i, probe in enumerate(sensors):
            expected = {
                j for j, other in enumerate(sensors)
                if j != i and probe.distance_km(other) <= eta
            }
            assert set(index.neighbours_within(i)) == expected

    def test_query_point(self):
        sensors = line_of_sensors(5, spacing_deg=0.05)
        index = GridIndex(sensors, 2.0)
        found = index.query_point(40.0, 0.0)
        assert 0 in found

    def test_query_point_matches_scalar_oracle(self):
        """The batched haversine must agree with per-candidate distances."""
        rng = np.random.default_rng(11)
        sensors = [
            Sensor(f"s{i}", "t", 40.0 + rng.uniform(-0.1, 0.1), 3.0 + rng.uniform(-0.1, 0.1))
            for i in range(50)
        ]
        eta = 2.5
        index = GridIndex(sensors, eta)
        probe = Sensor("probe", "t", 40.02, 3.01)
        expected = {
            j for j, other in enumerate(sensors)
            if probe.distance_km(other) <= eta
        }
        assert set(index.query_point(probe.lat, probe.lon)) == expected

    def test_query_far_from_all_cells_is_empty(self):
        index = GridIndex(line_of_sensors(5), 1.0)
        assert index.query_point(-40.0, 90.0) == []

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            GridIndex(line_of_sensors(2), 0.0)

    def test_high_latitude_correctness(self):
        # cos(lat) shrinks longitude degrees; the index must stay correct.
        sensors = [Sensor(f"s{i}", "t", 69.9 + 0.001 * i, 20.0 + 0.01 * i) for i in range(20)]
        eta = 1.0
        index = GridIndex(sensors, eta)
        for i, probe in enumerate(sensors):
            expected = {
                j for j, other in enumerate(sensors)
                if j != i and probe.distance_km(other) <= eta
            }
            assert set(index.neighbours_within(i)) == expected


class TestProximityGraph:
    def test_grid_equals_brute(self):
        rng = np.random.default_rng(42)
        sensors = [
            Sensor(f"s{i}", "t", 43.0 + rng.uniform(0, 0.05), -3.8 + rng.uniform(0, 0.05))
            for i in range(40)
        ]
        grid = build_proximity_graph(sensors, 1.2, "grid")
        brute = build_proximity_graph(sensors, 1.2, "brute")
        assert grid == brute

    def test_chain_adjacency(self):
        # ~0.85 km spacing; eta=1 connects only consecutive sensors.
        sensors = line_of_sensors(4, spacing_deg=0.01)
        graph = build_proximity_graph(sensors, 1.0)
        assert graph["s0"] == {"s1"}
        assert graph["s1"] == {"s0", "s2"}

    def test_isolated_sensor_present(self):
        sensors = [Sensor("a", "t", 0.0, 0.0), Sensor("b", "t", 50.0, 50.0)]
        graph = build_proximity_graph(sensors, 1.0)
        assert graph == {"a": set(), "b": set()}

    def test_duplicate_ids_rejected(self):
        sensors = [Sensor("a", "t", 0.0, 0.0), Sensor("a", "h", 0.0, 0.1)]
        with pytest.raises(ValueError, match="unique"):
            build_proximity_graph(sensors, 1.0)

    def test_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            build_proximity_graph(line_of_sensors(2), 1.0, "kdtree")

    def test_bad_eta(self):
        with pytest.raises(ValueError, match="eta"):
            build_proximity_graph(line_of_sensors(2), -1.0)


class TestComponents:
    def test_two_components(self):
        graph = {"a": {"b"}, "b": {"a"}, "c": {"d"}, "d": {"c"}, "e": set()}
        comps = connected_components(graph)
        assert sorted(len(c) for c in comps) == [1, 2, 2]
        assert comps[0] in ({"a", "b"}, {"c", "d"})  # largest first (ties)

    def test_component_of(self):
        graph = {"a": {"b"}, "b": {"a", "c"}, "c": {"b"}, "x": set()}
        assert component_of(graph, "a") == {"a", "b", "c"}
        assert component_of(graph, "x") == {"x"}
        with pytest.raises(KeyError):
            component_of(graph, "ghost")

    def test_components_partition_nodes(self):
        rng = np.random.default_rng(1)
        sensors = [
            Sensor(f"s{i}", "t", rng.uniform(0, 1), rng.uniform(0, 1)) for i in range(30)
        ]
        graph = build_proximity_graph(sensors, 20.0)
        comps = connected_components(graph)
        all_nodes = set().union(*comps) if comps else set()
        assert all_nodes == set(graph)
        assert sum(len(c) for c in comps) == len(graph)


class TestSubgraphConnectivity:
    GRAPH = {"a": {"b", "c"}, "b": {"a"}, "c": {"a", "d"}, "d": {"c"}, "e": set()}

    def test_is_connected_true(self):
        assert is_connected(self.GRAPH, {"a", "b", "c", "d"})
        assert is_connected(self.GRAPH, {"a"})

    def test_is_connected_false(self):
        assert not is_connected(self.GRAPH, {"b", "d"})
        assert not is_connected(self.GRAPH, {"a", "e"})
        assert not is_connected(self.GRAPH, set())

    def test_subgraph_restricts_edges(self):
        sub = subgraph(self.GRAPH, {"a", "b", "d"})
        assert sub == {"a": {"b"}, "b": {"a"}, "d": set()}

    def test_subgraph_unknown_node(self):
        with pytest.raises(KeyError):
            subgraph(self.GRAPH, {"ghost"})
