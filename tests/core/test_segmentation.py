"""Unit tests for the linear-segmentation algorithms (MISCELA step 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.segmentation import (
    Segment,
    bottom_up_segmentation,
    reconstruct,
    segment_series,
    sliding_window_segmentation,
    smooth_series,
    top_down_segmentation,
)

ALGORITHMS = [
    sliding_window_segmentation,
    bottom_up_segmentation,
    top_down_segmentation,
]
METHOD_NAMES = ["sliding_window", "bottom_up", "top_down"]


class TestSegment:
    def test_slope_and_interpolate(self):
        seg = Segment(2, 6, 10.0, 18.0)
        assert seg.slope == pytest.approx(2.0)
        assert seg.interpolate(4) == pytest.approx(14.0)
        assert seg.length == 5

    def test_point_segment(self):
        seg = Segment(3, 3, 5.0, 5.0)
        assert seg.slope == 0.0
        assert seg.interpolate(3) == 5.0

    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            Segment(5, 3, 0.0, 0.0)

    def test_interpolate_out_of_range(self):
        with pytest.raises(ValueError):
            Segment(0, 2, 0.0, 1.0).interpolate(5)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestAlgorithmsCommon:
    def test_empty_series(self, algorithm):
        assert algorithm(np.array([]), 1.0) == []

    def test_single_point(self, algorithm):
        segs = algorithm(np.array([7.0]), 1.0)
        assert len(segs) == 1
        assert segs[0].start == segs[0].end == 0

    def test_two_points(self, algorithm):
        segs = algorithm(np.array([1.0, 3.0]), 0.0)
        assert segs[0].start == 0 and segs[-1].end == 1

    def test_straight_line_one_segment(self, algorithm):
        values = np.arange(20, dtype=float) * 2.5
        segs = algorithm(values, 0.01)
        assert len(segs) == 1
        assert segs[0].value_start == 0.0
        assert segs[0].value_end == pytest.approx(47.5)

    def test_segments_tile_the_range(self, algorithm):
        rng = np.random.default_rng(5)
        values = np.cumsum(rng.normal(0, 1, 60))
        segs = algorithm(values, 0.8)
        assert segs[0].start == 0
        assert segs[-1].end == 59
        for prev, nxt in zip(segs, segs[1:]):
            # Adjacent segments share their boundary index (connected PLA)
            # or abut exactly.
            assert nxt.start in (prev.end, prev.end + 1)

    def test_error_bound_respected(self, algorithm):
        rng = np.random.default_rng(11)
        values = np.cumsum(rng.normal(0, 1, 80))
        max_error = 1.5
        segs = algorithm(values, max_error)
        for seg in segs:
            idx = np.arange(seg.start, seg.end + 1)
            approx = seg.value_start + seg.slope * (idx - seg.start)
            assert np.max(np.abs(values[idx] - approx)) <= max_error + 1e-9

    def test_offset_shifts_indices(self, algorithm):
        values = np.array([1.0, 2.0, 3.0])
        segs = algorithm(values, 0.5, offset=10)
        assert segs[0].start == 10
        assert segs[-1].end == 12

    def test_zero_budget_vee_splits(self, algorithm):
        values = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        segs = algorithm(values, 0.0)
        assert len(segs) >= 2  # the peak cannot be one straight line


class TestSlidingWindowIncremental:
    """The convex-hull error oracle must match a full re-scan per step."""

    @staticmethod
    def _rescanning_reference(values, max_error, offset=0):
        """The pre-optimisation sliding window: full residual per step."""
        from repro.core.segmentation import (
            _interpolation_error,
            _segment_endpoints,
            _shift,
        )

        values = np.asarray(values, dtype=np.float64)
        n = values.shape[0]
        if n == 0:
            return []
        if n == 1:
            return [Segment(offset, offset, float(values[0]), float(values[0]))]
        segments = []
        anchor = 0
        i = 1
        while i < n:
            if _interpolation_error(values, anchor, i) > max_error:
                segments.append(_segment_endpoints(values, anchor, i - 1))
                anchor = i - 1
            i += 1
        segments.append(_segment_endpoints(values, anchor, n - 1))
        return [_shift(s, offset) for s in segments]

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("max_error", [0.0, 0.3, 1.5, 8.0])
    def test_matches_rescanning_reference(self, seed, max_error):
        rng = np.random.default_rng(seed)
        kind = seed % 3
        n = int(rng.integers(2, 150))
        if kind == 0:
            values = np.cumsum(rng.normal(0, 1, n))
        elif kind == 1:
            values = np.arange(n, dtype=float) * rng.uniform(-2, 2) + rng.normal(
                0, 0.05, n
            )
        else:
            values = np.where(
                rng.random(n) < 0.2, rng.choice([-5.0, 5.0], n), 0.0
            ).cumsum()
        assert sliding_window_segmentation(values, max_error) == \
            self._rescanning_reference(values, max_error)

    def test_constant_series_single_segment(self):
        values = np.full(100, 3.25)
        segs = sliding_window_segmentation(values, 0.0)
        assert len(segs) == 1 and segs[0].start == 0 and segs[0].end == 99

    def test_long_segment_is_linear_time(self):
        """A 5k-point near-line must finish instantly (was quadratic)."""
        import time

        values = np.arange(5000, dtype=float) * 0.5
        start = time.perf_counter()
        segs = sliding_window_segmentation(values, 1.0)
        elapsed = time.perf_counter() - start
        assert segs[0].start == 0 and segs[-1].end == 4999
        assert elapsed < 1.0  # the re-scanning version took tens of seconds


class TestSegmentSeries:
    def test_rejects_none_method(self):
        with pytest.raises(ValueError, match="real method"):
            segment_series(np.arange(5.0), "none", 1.0)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown segmentation"):
            segment_series(np.arange(5.0), "magic", 1.0)

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_nan_gaps_split_runs(self, method):
        values = np.array([1.0, 2.0, np.nan, 5.0, 6.0, 7.0])
        segs = segment_series(values, method, 0.5)
        covered = set()
        for seg in segs:
            covered.update(range(seg.start, seg.end + 1))
        assert 2 not in covered
        assert {0, 1, 3, 4, 5} <= covered

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_all_nan(self, method):
        values = np.full(5, np.nan)
        assert segment_series(values, method, 0.5) == []


class TestReconstruct:
    def test_round_trip_straight_line(self):
        values = np.linspace(0, 10, 11)
        segs = sliding_window_segmentation(values, 0.01)
        rebuilt = reconstruct(segs, len(values))
        np.testing.assert_allclose(rebuilt, values, atol=1e-9)

    def test_uncovered_is_nan(self):
        out = reconstruct([Segment(2, 4, 1.0, 3.0)], 7)
        assert np.isnan(out[0]) and np.isnan(out[5])
        assert out[3] == pytest.approx(2.0)

    def test_segment_past_length_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            reconstruct([Segment(0, 9, 0.0, 1.0)], 5)


class TestSmoothSeries:
    def test_none_is_identity(self):
        values = np.array([1.0, 5.0, 2.0])
        out = smooth_series(values, "none", 1.0)
        np.testing.assert_array_equal(out, values)

    def test_smoothing_removes_small_jitter(self):
        # A ramp with tiny alternating jitter: smoothing with budget above
        # the jitter amplitude must yield a (near) straight line.
        n = 40
        ramp = np.linspace(0, 10, n)
        jitter = 0.05 * np.where(np.arange(n) % 2 == 0, 1.0, -1.0)
        smoothed = smooth_series(ramp + jitter, "bottom_up", 0.2)
        deltas = np.abs(np.diff(smoothed))
        # Raw jitter flips sign each step; the smoothed line's step is ~10/39.
        assert np.all(deltas < 0.45)

    def test_preserves_nan_positions(self):
        values = np.array([1.0, np.nan, 3.0, 4.0, 5.0])
        out = smooth_series(values, "sliding_window", 0.5)
        assert np.isnan(out[1])
        assert not np.isnan(out[2])
