"""Unit tests for evolving-timestamp extraction (MISCELA step 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evolving import co_evolution_count, extract_all_evolving, extract_evolving
from repro.core.parameters import MiningParameters
from repro.core.types import DECREASING, INCREASING, Sensor, SensorDataset
from tests.conftest import make_timeline


class TestExtractEvolving:
    def test_simple_steps(self):
        values = np.array([10.0, 10.0, 15.0, 15.0, 9.0])
        ev = extract_evolving(values, evolving_rate=2.0)
        np.testing.assert_array_equal(ev.indices, [2, 4])
        assert ev.direction_at(2) == INCREASING
        assert ev.direction_at(4) == DECREASING

    def test_changes_below_epsilon_filtered(self):
        values = np.array([10.0, 11.0, 12.0, 13.0])
        ev = extract_evolving(values, evolving_rate=2.0)
        assert len(ev) == 0

    def test_change_exactly_epsilon_counts(self):
        values = np.array([0.0, 2.0])
        ev = extract_evolving(values, evolving_rate=2.0)
        np.testing.assert_array_equal(ev.indices, [1])

    def test_zero_epsilon_catches_every_strict_change(self):
        values = np.array([1.0, 1.0, 1.5, 1.5, 1.2])
        ev = extract_evolving(values, evolving_rate=0.0)
        np.testing.assert_array_equal(ev.indices, [2, 4])

    def test_nan_endpoints_do_not_evolve(self):
        values = np.array([1.0, np.nan, 9.0, 9.0, np.nan])
        ev = extract_evolving(values, evolving_rate=1.0)
        # 1: nan after 1.0; 2: nan before 9.0; 4: nan after 9.0 — none evolve.
        assert len(ev) == 0

    def test_short_series(self):
        assert len(extract_evolving(np.array([5.0]), 1.0)) == 0
        assert len(extract_evolving(np.array([]), 1.0)) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="evolving_rate"):
            extract_evolving(np.zeros(3), -1.0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            extract_evolving(np.zeros((3, 2)), 1.0)

    def test_monotone_in_epsilon(self):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.normal(0, 2, 100))
        sizes = [len(extract_evolving(values, e)) for e in (0.5, 1.0, 2.0, 4.0)]
        assert sizes == sorted(sizes, reverse=True)

    def test_segmentation_removes_jitter_evolutions(self):
        # Jitter of ±0.6 around a flat line with one real +5 jump: with
        # ε=0.5 the raw series "evolves" everywhere, the smoothed one only
        # at (or near) the jump.
        n = 60
        rng = np.random.default_rng(3)
        values = np.where(np.arange(n) >= 30, 5.0, 0.0) + 0.3 * rng.choice([-1.0, 1.0], n)
        raw = extract_evolving(values, evolving_rate=0.5)
        smoothed = extract_evolving(
            values, evolving_rate=0.5, segmentation="bottom_up", segmentation_error=0.7
        )
        assert len(smoothed) < len(raw)


class TestExtractAllEvolving:
    def _dataset(self):
        timeline = make_timeline(6)
        sensors = [
            Sensor("t1", "temperature", 0.0, 0.0),
            Sensor("p1", "pm25", 0.0, 0.001),
        ]
        measurements = {
            "t1": np.array([0.0, 3.0, 3.0, 6.0, 6.0, 6.0]),
            "p1": np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]),
        }
        return SensorDataset("d", timeline, sensors, measurements)

    def test_respects_per_attribute_rates(self):
        ds = self._dataset()
        params = MiningParameters(
            evolving_rate=2.0,
            distance_threshold=1.0,
            max_attributes=2,
            min_support=1,
            evolving_rate_per_attribute={"pm25": 0.5},
        )
        evolving = extract_all_evolving(ds, params)
        np.testing.assert_array_equal(evolving["t1"].indices, [1, 3])
        np.testing.assert_array_equal(evolving["p1"].indices, [1, 2, 3, 4, 5])

    def test_covers_every_sensor(self):
        ds = self._dataset()
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=1
        )
        evolving = extract_all_evolving(ds, params)
        assert set(evolving) == {"t1", "p1"}


class TestCoEvolutionCount:
    def test_counts_shared_timestamps(self, tiny_dataset, tiny_params):
        evolving = extract_all_evolving(tiny_dataset, tiny_params)
        assert co_evolution_count(evolving, ("a", "b")) == 3
        assert co_evolution_count(evolving, ("c", "d")) == 2
        assert co_evolution_count(evolving, ("a", "c")) == 0

    def test_empty_ids(self, tiny_dataset, tiny_params):
        evolving = extract_all_evolving(tiny_dataset, tiny_params)
        assert co_evolution_count(evolving, ()) == 0

    def test_triple_intersection(self, tiny_dataset, tiny_params):
        evolving = extract_all_evolving(tiny_dataset, tiny_params)
        assert co_evolution_count(evolving, ("a", "b", "c")) == 0
