"""The public API surface: everything README/DESIGN promise is importable."""

from __future__ import annotations

import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "MiscelaMiner", "NaiveMiner", "MiningParameters", "MiningResult",
            "SensorDataset", "Sensor", "CAP", "EvolvingSet",
            "Database", "ResultCache", "CapReport", "TestClient",
        ],
    )
    def test_core_classes_exported(self, name):
        assert inspect.isclass(getattr(repro, name))

    @pytest.mark.parametrize(
        "name",
        [
            "generate_santander", "generate_china6", "generate_china13",
            "generate_covid19", "generate", "recommended_parameters",
            "dataset_table", "compare_periods", "sweep", "render_map",
            "render_timeseries", "render_cap_timeseries", "caps_to_json",
            "caps_to_geojson", "filter_maximal", "haversine_km", "cache_key",
            "create_app", "create_wsgi_app", "read_dataset_dir",
            "write_dataset_dir",
        ],
    )
    def test_functions_exported(self, name):
        assert callable(getattr(repro, name))

    def test_readme_quickstart_runs(self, tmp_path):
        """The exact quickstart from README.md."""
        from repro import CapReport, MiningParameters, MiscelaMiner, generate_santander

        dataset = generate_santander(seed=7)
        params = MiningParameters(
            evolving_rate=3.0,
            distance_threshold=0.35,
            max_attributes=3,
            min_support=10,
        )
        result = MiscelaMiner(params).mine(dataset)
        assert result.num_caps > 0
        CapReport(dataset, result).save_html(tmp_path / "caps.html")
        assert (tmp_path / "caps.html").exists()


class TestSubpackageDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core", "repro.data", "repro.store", "repro.cache",
            "repro.server", "repro.viz", "repro.analysis", "repro.cli",
        ],
    )
    def test_every_subpackage_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_functions_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"
