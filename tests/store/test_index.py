"""Unit tests for the secondary index structures."""

from __future__ import annotations

import pytest

from repro.store.index import HashIndex, SortedIndex


class TestHashIndex:
    def test_insert_lookup(self):
        idx = HashIndex("city")
        idx.insert(1, {"city": "london"})
        idx.insert(2, {"city": "london"})
        idx.insert(3, {"city": "paris"})
        assert idx.lookup("london") == {1, 2}
        assert idx.lookup("tokyo") == set()
        assert len(idx) == 3

    def test_remove(self):
        idx = HashIndex("city")
        idx.insert(1, {"city": "london"})
        idx.remove(1)
        assert idx.lookup("london") == set()
        assert not idx.covers(1)
        idx.remove(1)  # idempotent

    def test_missing_field_not_indexed(self):
        idx = HashIndex("city")
        idx.insert(1, {"name": "x"})
        assert not idx.covers(1)

    def test_none_not_indexed(self):
        idx = HashIndex("city")
        idx.insert(1, {"city": None})
        assert not idx.covers(1)

    def test_unhashable_not_indexed(self):
        idx = HashIndex("tags")
        idx.insert(1, {"tags": ["a", "b"]})
        assert not idx.covers(1)
        assert idx.lookup(["a", "b"]) == set()

    def test_dotted_path(self):
        idx = HashIndex("a.b")
        idx.insert(1, {"a": {"b": 5}})
        assert idx.lookup(5) == {1}

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            HashIndex("")


class TestSortedIndex:
    def _index(self):
        idx = SortedIndex("age")
        for doc_id, age in [(1, 30), (2, 50), (3, 40), (4, 30)]:
            idx.insert(doc_id, {"age": age})
        return idx

    def test_full_range(self):
        assert list(self._index().range()) == [1, 4, 3, 2]

    def test_bounded_range(self):
        idx = self._index()
        assert set(idx.range(30, 40)) == {1, 4, 3}
        assert set(idx.range(31, 50)) == {3, 2}

    def test_exclusive_bounds(self):
        idx = self._index()
        assert set(idx.range(30, 50, include_low=False)) == {3, 2}
        assert set(idx.range(30, 50, include_high=False)) == {1, 4, 3}

    def test_remove(self):
        idx = self._index()
        idx.remove(3)
        assert set(idx.range(30, 50)) == {1, 4, 2}
        assert len(idx) == 3
        idx.remove(3)  # idempotent

    def test_duplicates_supported(self):
        idx = self._index()
        assert set(idx.range(30, 30)) == {1, 4}

    def test_unorderable_skipped(self):
        idx = SortedIndex("v")
        idx.insert(1, {"v": 5})
        idx.insert(2, {"v": "string"})  # int vs str insort -> TypeError path
        assert idx.covers(1)

    def test_missing_field_skipped(self):
        idx = SortedIndex("v")
        idx.insert(1, {"other": 5})
        assert not idx.covers(1)
