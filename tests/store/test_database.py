"""Unit tests for the database (collections + JSON persistence)."""

from __future__ import annotations

import json

import pytest

from repro.store.database import Database


class TestCollections:
    def test_create_on_access(self):
        db = Database()
        c = db.collection("datasets")
        assert "datasets" in db
        assert db["datasets"] is c

    def test_names_sorted(self):
        db = Database()
        db["b"]
        db["a"]
        assert db.collection_names() == ["a", "b"]
        assert sorted(db) == ["a", "b"]

    def test_drop(self):
        db = Database()
        db["x"].insert_one({"a": 1})
        assert db.drop_collection("x")
        assert "x" not in db
        assert not db.drop_collection("x")

    def test_stats(self):
        db = Database()
        db["a"].insert_many([{}, {}])
        stats = db.stats()
        assert stats["collections"] == {"a": 2}
        assert stats["path"] is None


class TestPersistence:
    def test_save_and_reopen(self, tmp_path):
        path = tmp_path / "db.json"
        db = Database(path)
        db["caps"].create_index("key", "hash")
        db["caps"].insert_one({"key": "abc", "result": {"caps": [1, 2]}})
        db.save()

        reopened = Database.open(path)
        doc = reopened["caps"].find_one({"key": "abc"})
        assert doc is not None
        assert doc["result"]["caps"] == [1, 2]
        assert reopened["caps"].indexes()["hash"] == ["key"]

    def test_save_requires_path(self):
        with pytest.raises(ValueError, match="snapshot path"):
            Database().save()

    def test_save_explicit_path(self, tmp_path):
        db = Database()
        db["x"].insert_one({"a": 1})
        target = db.save(tmp_path / "explicit.json")
        assert target.exists()
        assert db.path == target

    def test_snapshot_is_json(self, tmp_path):
        db = Database()
        db["x"].insert_one({"a": 1})
        path = db.save(tmp_path / "s.json")
        snapshot = json.loads(path.read_text())
        assert snapshot["format"] == "repro-store-v1"

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "v999"}))
        with pytest.raises(ValueError, match="unrecognised"):
            Database(path)

    def test_missing_file_starts_empty(self, tmp_path):
        db = Database(tmp_path / "nothere.json")
        assert db.collection_names() == []

    def test_atomic_replace_leaves_no_temp(self, tmp_path):
        db = Database()
        db["x"].insert_one({"a": 1})
        db.save(tmp_path / "db.json")
        db.save(tmp_path / "db.json")  # overwrite
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_ids_survive_reload(self, tmp_path):
        path = tmp_path / "db.json"
        db = Database(path)
        db["x"].insert_one({"n": 1})
        db["x"].insert_one({"n": 2})
        db["x"].delete_many({"n": 2})
        db.save()
        reopened = Database.open(path)
        assert reopened["x"].insert_one({"n": 3}) == 3
