"""Unit tests for document collections."""

from __future__ import annotations

import pytest

from repro.store.collection import Collection
from repro.store.query import QueryError


@pytest.fixture
def people() -> Collection:
    c = Collection("people")
    c.insert_many(
        [
            {"name": "ada", "age": 36, "city": "london"},
            {"name": "grace", "age": 85, "city": "arlington"},
            {"name": "alan", "age": 41, "city": "london"},
        ]
    )
    return c


class TestInsertFind:
    def test_insert_assigns_ids(self, people):
        ids = [d["_id"] for d in people.find()]
        assert ids == [1, 2, 3]

    def test_find_with_query(self, people):
        docs = people.find({"city": "london"})
        assert {d["name"] for d in docs} == {"ada", "alan"}

    def test_find_one(self, people):
        doc = people.find_one({"name": "grace"})
        assert doc is not None and doc["age"] == 85
        assert people.find_one({"name": "ghost"}) is None

    def test_find_sorted(self, people):
        docs = people.find(sort="age")
        assert [d["name"] for d in docs] == ["ada", "alan", "grace"]
        docs = people.find(sort="age", descending=True)
        assert [d["name"] for d in docs] == ["grace", "alan", "ada"]

    def test_find_sort_missing_field_sorts_last(self, people):
        people.insert_one({"name": "noage"})
        docs = people.find(sort="age")
        assert docs[-1]["name"] == "noage"

    def test_find_limit(self, people):
        assert len(people.find(limit=2)) == 2
        with pytest.raises(ValueError):
            people.find(limit=-1)

    def test_count(self, people):
        assert people.count() == 3
        assert people.count({"city": "london"}) == 2
        assert len(people) == 3

    def test_insert_rejects_non_mapping(self, people):
        with pytest.raises(TypeError):
            people.insert_one(["nope"])  # type: ignore[arg-type]

    def test_returned_documents_are_copies(self, people):
        doc = people.find_one({"name": "ada"})
        doc["age"] = 999
        assert people.find_one({"name": "ada"})["age"] == 36

    def test_inserted_documents_are_copied(self):
        c = Collection("c")
        original = {"tags": ["a"]}
        c.insert_one(original)
        original["tags"].append("b")
        assert c.find_one({})["tags"] == ["a"]


class TestUpdateDelete:
    def test_update_one(self, people):
        doc_id = people.update_one({"name": "ada"}, {"age": 37})
        assert doc_id == 1
        assert people.find_one({"name": "ada"})["age"] == 37

    def test_update_missing_returns_none(self, people):
        assert people.update_one({"name": "ghost"}, {"age": 1}) is None

    def test_update_id_rejected(self, people):
        with pytest.raises(QueryError, match="_id"):
            people.update_one({"name": "ada"}, {"_id": 99})

    def test_replace_one_keeps_id(self, people):
        doc_id = people.replace_one({"name": "ada"}, {"name": "ada2", "age": 1})
        assert doc_id == 1
        assert people.find_one({"_id": 1})["name"] == "ada2"

    def test_replace_missing_returns_none(self, people):
        assert people.replace_one({"name": "ghost"}, {"x": 1}) is None

    def test_delete_many(self, people):
        assert people.delete_many({"city": "london"}) == 2
        assert people.count() == 1

    def test_delete_none_matching(self, people):
        assert people.delete_many({"city": "tokyo"}) == 0

    def test_clear(self, people):
        people.clear()
        assert people.count() == 0

    def test_ids_not_reused_after_delete(self, people):
        people.delete_many({})
        new_id = people.insert_one({"name": "new"})
        assert new_id == 4


class TestIndexedQueries:
    def test_hash_index_equality(self, people):
        people.create_index("city", "hash")
        docs = people.find({"city": "london"})
        assert {d["name"] for d in docs} == {"ada", "alan"}

    def test_hash_index_backfilled(self, people):
        people.create_index("city", "hash")
        people.insert_one({"name": "new", "city": "london"})
        assert people.count({"city": "london"}) == 3

    def test_hash_index_after_update(self, people):
        people.create_index("city", "hash")
        people.update_one({"name": "ada"}, {"city": "paris"})
        assert people.count({"city": "london"}) == 1
        assert people.count({"city": "paris"}) == 1

    def test_hash_index_after_delete(self, people):
        people.create_index("city", "hash")
        people.delete_many({"name": "ada"})
        assert people.count({"city": "london"}) == 1

    def test_sorted_index_range(self, people):
        people.create_index("age", "sorted")
        docs = people.find({"age": {"$gte": 40, "$lte": 90}})
        assert {d["name"] for d in docs} == {"grace", "alan"}

    def test_sorted_index_strict_bounds(self, people):
        people.create_index("age", "sorted")
        docs = people.find({"age": {"$gt": 36, "$lt": 85}})
        assert {d["name"] for d in docs} == {"alan"}

    def test_index_results_equal_scan(self, people):
        scan = people.find({"city": "london"})
        people.create_index("city", "hash")
        indexed = people.find({"city": "london"})
        assert scan == indexed

    def test_docs_missing_indexed_field_still_found(self, people):
        people.create_index("city", "hash")
        people.insert_one({"name": "nocity"})
        assert people.find_one({"name": "nocity"}) is not None
        # equality on missing field matches None per Mongo semantics
        assert people.count({"city": None}) == 1

    def test_duplicate_index_noop(self, people):
        people.create_index("city", "hash")
        people.create_index("city", "hash")
        assert people.indexes()["hash"] == ["city"]

    def test_bad_index_kind(self, people):
        with pytest.raises(ValueError, match="kind"):
            people.create_index("city", "btree")

    def test_dotted_path_index(self):
        c = Collection("caps")
        c.create_index("payload.dataset", "hash")
        c.insert_one({"payload": {"dataset": "santander"}})
        c.insert_one({"payload": {"dataset": "china6"}})
        assert c.count({"payload.dataset": "santander"}) == 1


class TestDumpLoad:
    def test_round_trip(self, people):
        people.create_index("city", "hash")
        people.create_index("age", "sorted")
        snapshot = people.dump()
        restored = Collection.load(snapshot)
        assert restored.find() == people.find()
        assert restored.indexes() == people.indexes()
        # Indexes work after reload.
        assert restored.count({"city": "london"}) == 2

    def test_ids_continue_after_load(self, people):
        restored = Collection.load(people.dump())
        assert restored.insert_one({"name": "next"}) == 4


class TestUpdateIf:
    """Compare-and-set semantics (the lease-claiming primitive)."""

    def test_applies_when_expected_holds(self, people):
        doc_id = people.update_if(
            {"name": "ada"}, {"city": "london"}, {"city": "cambridge"}
        )
        assert doc_id is not None
        assert people.find_one({"name": "ada"})["city"] == "cambridge"

    def test_refuses_when_expected_fails(self, people):
        assert people.update_if(
            {"name": "ada"}, {"city": "paris"}, {"city": "cambridge"}
        ) is None
        assert people.find_one({"name": "ada"})["city"] == "london"

    def test_none_for_unmatched_query(self, people):
        assert people.update_if(
            {"name": "nobody"}, {"city": "london"}, {"city": "x"}
        ) is None

    def test_expected_supports_operators(self, people):
        assert people.update_if(
            {"name": "grace"}, {"age": {"$gte": 80}}, {"age": 86}
        ) is not None
        assert people.find_one({"name": "grace"})["age"] == 86

    def test_id_stays_immutable(self, people):
        with pytest.raises(QueryError, match="_id"):
            people.update_if({"name": "ada"}, {}, {"_id": 99})

    def test_indexes_follow_the_update(self, people):
        people.create_index("city", "hash")
        people.update_if({"name": "alan"}, {"city": "london"}, {"city": "york"})
        assert [d["name"] for d in people.find({"city": "york"})] == ["alan"]
        assert people.count({"city": "london"}) == 1
