"""Unit tests for the Mongo-style query language."""

from __future__ import annotations

import pytest

from repro.store.query import QueryError, compile_query, matches

DOC = {
    "dataset": "santander",
    "support": 12,
    "attributes": ["temperature", "light"],
    "parameters": {"min_support": 10, "evolving_rate": 1.5},
    "note": "hello world",
}


class TestEquality:
    def test_simple(self):
        assert matches(DOC, {"dataset": "santander"})
        assert not matches(DOC, {"dataset": "china6"})

    def test_dotted_path(self):
        assert matches(DOC, {"parameters.min_support": 10})
        assert not matches(DOC, {"parameters.min_support": 11})

    def test_missing_field(self):
        assert not matches(DOC, {"ghost": 1})
        assert matches(DOC, {"ghost": None})  # Mongo: missing equals null

    def test_array_contains_scalar(self):
        assert matches(DOC, {"attributes": "temperature"})
        assert not matches(DOC, {"attributes": "pm25"})

    def test_array_equals_array(self):
        assert matches(DOC, {"attributes": ["temperature", "light"]})

    def test_empty_query_matches_all(self):
        assert matches(DOC, {})


class TestComparisons:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ({"support": {"$gt": 11}}, True),
            ({"support": {"$gt": 12}}, False),
            ({"support": {"$gte": 12}}, True),
            ({"support": {"$lt": 13}}, True),
            ({"support": {"$lte": 11}}, False),
            ({"support": {"$ne": 12}}, False),
            ({"support": {"$eq": 12}}, True),
            ({"support": {"$gte": 10, "$lte": 20}}, True),
            ({"support": {"$gte": 10, "$lte": 11}}, False),
        ],
    )
    def test_operators(self, query, expected):
        assert matches(DOC, query) is expected

    def test_comparison_on_missing_field(self):
        assert not matches(DOC, {"ghost": {"$gt": 0}})

    def test_type_mismatch_is_false(self):
        assert not matches(DOC, {"note": {"$gt": 5}})


class TestMembership:
    def test_in(self):
        assert matches(DOC, {"dataset": {"$in": ["santander", "china6"]}})
        assert not matches(DOC, {"dataset": {"$in": ["china6"]}})

    def test_nin(self):
        assert matches(DOC, {"dataset": {"$nin": ["china6"]}})
        assert not matches(DOC, {"dataset": {"$nin": ["santander"]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"dataset": {"$in": "santander"}})

    def test_exists(self):
        assert matches(DOC, {"note": {"$exists": True}})
        assert matches(DOC, {"ghost": {"$exists": False}})
        assert not matches(DOC, {"ghost": {"$exists": True}})

    def test_exists_requires_bool(self):
        with pytest.raises(QueryError):
            matches(DOC, {"note": {"$exists": 1}})

    def test_all(self):
        assert matches(DOC, {"attributes": {"$all": ["light"]}})
        assert not matches(DOC, {"attributes": {"$all": ["light", "pm25"]}})

    def test_size(self):
        assert matches(DOC, {"attributes": {"$size": 2}})
        assert not matches(DOC, {"attributes": {"$size": 3}})

    def test_regex(self):
        assert matches(DOC, {"note": {"$regex": "^hello"}})
        assert not matches(DOC, {"note": {"$regex": "^world"}})
        assert not matches(DOC, {"support": {"$regex": "1"}})  # non-string


class TestBoolean:
    def test_and(self):
        q = {"$and": [{"dataset": "santander"}, {"support": {"$gt": 10}}]}
        assert matches(DOC, q)

    def test_or(self):
        q = {"$or": [{"dataset": "china6"}, {"support": 12}]}
        assert matches(DOC, q)
        q2 = {"$or": [{"dataset": "china6"}, {"support": 13}]}
        assert not matches(DOC, q2)

    def test_top_level_not(self):
        assert matches(DOC, {"$not": {"dataset": "china6"}})
        assert not matches(DOC, {"$not": {"dataset": "santander"}})

    def test_field_not(self):
        assert matches(DOC, {"support": {"$not": {"$gt": 20}}})
        assert not matches(DOC, {"support": {"$not": {"$gt": 5}}})

    def test_nested_combinators(self):
        q = {
            "$or": [
                {"$and": [{"dataset": "santander"}, {"support": {"$lt": 5}}]},
                {"parameters.evolving_rate": {"$gte": 1.0}},
            ]
        }
        assert matches(DOC, q)


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(QueryError, match="unknown operator"):
            matches(DOC, {"support": {"$near": 5}})

    def test_unknown_top_level_operator(self):
        with pytest.raises(QueryError, match="top-level"):
            matches(DOC, {"$xor": []})

    def test_and_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"$and": {"a": 1}})

    def test_compile_validates_early(self):
        with pytest.raises(QueryError):
            compile_query({"x": {"$bogus": 1}})

    def test_compile_rejects_non_mapping(self):
        with pytest.raises(QueryError):
            compile_query(["not", "a", "dict"])  # type: ignore[arg-type]

    def test_compiled_predicate_works(self):
        predicate = compile_query({"support": {"$gte": 10}})
        assert predicate(DOC)
        assert not predicate({"support": 5})
