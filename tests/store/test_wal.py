"""The WAL store engine: record codec, replay, tombstones, migration.

Complements ``test_store_properties.py`` (torn-tail exactness) and
``test_wal_faults.py`` (crash-point matrix): this file covers the
deterministic contracts — the CRC-32C format commitment, what each record
op replays to, how two Database instances sharing one path observe each
other, and that legacy snapshots migrate without being destroyed.
"""

from __future__ import annotations

import json

import pytest

from repro.store import wal
from repro.store.compaction import CompactionThread, needs_compaction
from repro.store.database import Database


# -- codec ---------------------------------------------------------------------


def test_crc32c_reference_vector():
    # The standard CRC-32C check value: crc of b"123456789".
    assert wal.crc32c(b"123456789") == 0xE3069283


def test_crc32c_streaming_equals_one_shot():
    data = b"miscela-v wal record"
    split = wal.crc32c(data[8:], wal.crc32c(data[:8]))
    assert split == wal.crc32c(data)


def test_encode_decode_round_trip():
    records = [{"op": "put", "doc": {"_id": 1, "v": "x"}}, {"op": "del", "ids": [1]}]
    buffer = b"".join(wal.encode_record(r) for r in records)
    decoded, end, torn = wal.decode_records(buffer)
    assert decoded == records
    assert end == len(buffer)
    assert not torn


def test_decode_rejects_insane_length_without_allocating():
    header = wal._HEADER.pack(wal.MAX_RECORD_BYTES + 1, 0)
    decoded, end, torn = wal.decode_records(header + b"x" * 64)
    assert decoded == [] and end == 0 and torn


def test_decode_rejects_non_dict_payload():
    payload = json.dumps([1, 2]).encode()
    buffer = wal._HEADER.pack(len(payload), wal.crc32c(payload)) + payload
    decoded, _end, torn = wal.decode_records(buffer)
    assert decoded == [] and torn


# -- engine basics -------------------------------------------------------------


def test_wal_layout_and_format_marker(tmp_path):
    path = tmp_path / "store.json"
    Database(path)["caps"].insert_one({"a": 1})
    root = tmp_path / "store.json.wal"
    assert (root / "FORMAT").read_text().strip() == "repro-store-wal-v1"
    assert (root / "caps.log").exists()
    assert not path.exists()  # no legacy snapshot is written by the WAL engine


def test_reopen_replays_everything(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    caps = db["caps"]
    caps.create_index("i", "hash")
    for i in range(3):
        caps.insert_one({"i": i})
    caps.update_one({"i": 1}, {"v": "updated"})
    caps.delete_many({"i": 0})

    reopened = Database(path)
    assert reopened["caps"].find() == caps.find()
    # The index definition itself is a log record.
    assert reopened["caps"].find({"i": 1}) == [caps.find_one({"i": 1})]


def test_tombstones_pin_the_id_space(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    db["caps"].insert_one({"a": 1})
    second = db["caps"].insert_one({"a": 2})
    db["caps"].delete_many({"_id": second})

    reopened = Database(path)
    # A dead id is never reused — the tombstone pins the counter past it.
    assert reopened["caps"].insert_one({"a": 3}) == 3


def test_clear_is_one_record(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    for i in range(5):
        db["caps"].insert_one({"i": i})
    db["caps"].clear()
    reopened = Database(path)
    assert reopened["caps"].find() == []


def test_collection_names_needing_escaping(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    db["weird/name with spaces"].insert_one({"a": 1})
    reopened = Database(path)
    assert reopened["weird/name with spaces"].find_one({"a": 1}) is not None


def test_drop_collection_removes_the_log(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    db["caps"].insert_one({"a": 1})
    db.drop_collection("caps")
    assert not (tmp_path / "store.json.wal" / "caps.log").exists()
    assert "caps" not in Database(path)


# -- cross-instance visibility -------------------------------------------------


def test_refresh_sees_peer_appends(tmp_path):
    path = tmp_path / "store.json"
    writer = Database(path)
    reader = Database(path)
    writer["caps"].insert_one({"a": 1})
    reader.refresh()
    assert reader["caps"].find_one({"a": 1}) is not None


def test_refresh_sees_peer_tombstones(tmp_path):
    path = tmp_path / "store.json"
    writer = Database(path)
    reader = Database(path)
    doc_id = writer["caps"].insert_one({"a": 1})
    reader.refresh()
    writer["caps"].delete_many({"_id": doc_id})
    reader.refresh()
    assert reader["caps"].find() == []


def test_refresh_survives_peer_compaction(tmp_path):
    path = tmp_path / "store.json"
    writer = Database(path)
    reader = Database(path)
    for i in range(10):
        writer["caps"].insert_one({"i": i})
    writer["caps"].delete_many({"i": {"$lte": 4}})
    reader.refresh()
    writer.compact()
    writer["caps"].insert_one({"i": 99})
    reader.refresh()  # inode changed: rebuild from the fresh segment
    assert reader["caps"].find() == writer["caps"].find()


def test_exclusive_serializes_two_instances(tmp_path):
    path = tmp_path / "store.json"
    a = Database(path)
    b = Database(path)
    with a.exclusive():
        a["caps"].insert_one({"from": "a"})
    with b.exclusive():  # entry replays a's append
        assert b["caps"].find_one({"from": "a"}) is not None
        b["caps"].insert_one({"from": "b"})
    with a.exclusive():
        assert a["caps"].count() == 2


# -- migration -----------------------------------------------------------------


def _legacy_store(tmp_path, documents):
    path = tmp_path / "store.json"
    legacy = Database(path, engine="snapshot")
    legacy["caps"].create_index("i", "hash")
    for document in documents:
        legacy["caps"].insert_one(dict(document))
    legacy.save()
    return path, legacy


def test_migration_round_trip_preserves_contents(tmp_path):
    documents = [{"i": i, "v": "x" * i} for i in range(4)]
    path, legacy = _legacy_store(tmp_path, documents)
    original = path.read_bytes()

    migrated = Database(path)  # default engine: migrates on first open
    assert migrated["caps"].find() == legacy["caps"].find()
    assert migrated["caps"].find({"i": 2}) == legacy["caps"].find({"i": 2})
    # Satellite: the original snapshot is byte-untouched until compaction.
    assert path.read_bytes() == original
    assert (tmp_path / "store.json.wal" / "MIGRATED").exists()


def test_migration_happens_once(tmp_path):
    path, _legacy = _legacy_store(tmp_path, [{"i": 1}])
    Database(path)["caps"].insert_one({"i": 2})
    # A second open must replay the WAL, not re-import the snapshot
    # (which would resurrect pre-WAL state and duplicate documents).
    reopened = Database(path)
    assert reopened["caps"].count() == 2


def test_first_compaction_archives_the_snapshot(tmp_path):
    path, _legacy = _legacy_store(tmp_path, [{"i": 1}])
    db = Database(path)
    original = path.read_bytes()
    db.compact()
    assert not path.exists()
    assert (tmp_path / "store.json.pre-wal").read_bytes() == original
    # The store reopens from WAL segments alone.
    assert Database(path)["caps"].count() == 1


def test_corrupt_snapshot_is_quarantined_not_fatal(tmp_path):
    path = tmp_path / "store.json"
    path.write_text("{not json", encoding="utf-8")
    db = Database(path)
    assert db["caps"].count() == 0
    quarantined = list(tmp_path.glob("store.json.corrupt-*"))
    assert len(quarantined) == 1
    assert quarantined[0].read_text(encoding="utf-8") == "{not json"


def test_unrecognised_format_still_raises(tmp_path):
    path = tmp_path / "store.json"
    path.write_text(json.dumps({"format": "repro-store-v999", "collections": {}}))
    with pytest.raises(ValueError, match="unrecognised"):
        Database(path)


# -- torn-tail quarantine ------------------------------------------------------


def test_torn_tail_is_quarantined_and_truncated(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    db["caps"].insert_one({"a": 1})
    log_path = tmp_path / "store.json.wal" / "caps.log"
    clean = log_path.read_bytes()
    with open(log_path, "ab") as handle:
        handle.write(b"\x99garbage-tail")

    reopened = Database(path)
    assert reopened["caps"].count() == 1
    assert log_path.read_bytes() == clean  # truncated back to the prefix
    sidecars = list((tmp_path / "store.json.wal").glob("caps.log.corrupt-*"))
    assert len(sidecars) == 1
    assert sidecars[0].read_bytes() == b"\x99garbage-tail"


def test_verify_log_reports_torn_bytes(tmp_path):
    path = tmp_path / "store.json"
    Database(path)["caps"].insert_one({"a": 1})
    log_path = tmp_path / "store.json.wal" / "caps.log"
    clean_size = log_path.stat().st_size
    with open(log_path, "ab") as handle:
        handle.write(b"xx")
    report = wal.verify_log(log_path)
    assert report["records"] == 1
    assert report["valid_bytes"] == clean_size
    assert report["torn_bytes"] == 2
    assert report["torn"]


# -- compaction ----------------------------------------------------------------


def test_compaction_drops_dead_weight(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    caps = db["caps"]
    for i in range(20):
        caps.insert_one({"i": i})
    caps.delete_many({"i": {"$lte": 14}})
    before = (tmp_path / "store.json.wal" / "caps.log").stat().st_size
    result = db.compact_collection("caps")
    assert result["compacted"]
    assert result["after_bytes"] < before
    assert Database(path)["caps"].find() == caps.find()


def test_needs_compaction_thresholds():
    assert not needs_compaction(10, 1)  # too short to bother
    assert not needs_compaction(100, 50)  # mostly live
    assert needs_compaction(500, 10)  # dead weight dominates


def test_compaction_thread_sweeps(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    for i in range(100):
        db["caps"].insert_one({"i": i})
    db["caps"].delete_many({"i": {"$lte": 97}})
    compactor = CompactionThread(db, interval_seconds=3600, min_records=10)
    results = compactor.sweep()  # run one pass synchronously
    assert [r["collection"] for r in results if r["compacted"]] == ["caps"]
    assert db.stats()["wal"]["caps"]["compactions"] == 1
    compactor.stop()


def test_stats_expose_wal_counters(tmp_path):
    path = tmp_path / "store.json"
    db = Database(path)
    db["caps"].insert_one({"a": 1})
    stats = db.stats()
    assert stats["engine"] == "wal"
    entry = stats["wal"]["caps"]
    assert entry["records"] == 1
    assert entry["live_documents"] == 1
    assert entry["segment_bytes"] > 0
