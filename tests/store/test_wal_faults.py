"""Store crash-point matrix: ``kill -9`` inside the WAL write path.

Each test runs a real subprocess with ``REPRO_STORE_FAULT`` armed, lets it
hard-exit (``os._exit``, exactly like SIGKILL landing there), then reopens
the store in *this* process and asserts recovery's contract: the store
opens cleanly and contains exactly the prefix of appends that completed —
never a half-record, never a lost acknowledged write, never a dead
compaction temp file.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.store import wal
from repro.store.database import Database

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def _run_store_script(script: str, store: Path, fault: str) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(SRC_DIR)
    )
    env.pop("REPRO_JOBS_FAULT", None)
    env["REPRO_STORE_FAULT"] = fault
    proc = subprocess.run(
        [sys.executable, "-c", script, str(store)],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    return proc.returncode


_INSERTS = """
import sys
from repro.store.database import Database
db = Database(sys.argv[1])
caps = db["caps"]
for n in range(1, 6):
    caps.insert_one({"n": n})
"""


@pytest.mark.parametrize("nth", [1, 2, 3, 5])
def test_mid_append_crash_recovers_exact_prefix(tmp_path, nth):
    store = tmp_path / "store.json"
    code = _run_store_script(_INSERTS, store, f"mid-append@caps:{nth}")
    assert code == wal.FAULT_EXIT_CODE

    log_path = tmp_path / "store.json.wal" / "caps.log"
    before = wal.verify_log(log_path)
    assert before["torn"]  # the half-record is really on disk

    reopened = Database(store)
    docs = reopened["caps"].find()
    assert [d["n"] for d in docs] == list(range(1, nth))
    # Recovery truncated the torn tail and quarantined its bytes.
    after = wal.verify_log(log_path)
    assert not after["torn"]
    assert after["records"] == nth - 1
    sidecars = list((tmp_path / "store.json.wal").glob("caps.log.corrupt-*"))
    assert len(sidecars) == 1
    # An id burned by the torn append is never reused after recovery.
    assert reopened["caps"].insert_one({"n": 99}) == nth


def test_pre_fsync_crash_reopens_cleanly(tmp_path):
    store = tmp_path / "store.json"
    code = _run_store_script(_INSERTS, store, "pre-fsync@caps:1")
    assert code == wal.FAULT_EXIT_CODE

    reopened = Database(store)
    docs = reopened["caps"].find()
    # The record bytes were written (only the fsync was lost), so on a
    # surviving page cache the first insert is visible — and whatever is
    # visible must be a clean prefix, never a torn record.
    assert [d["n"] for d in docs] == list(range(1, len(docs) + 1))
    report = wal.verify_log(tmp_path / "store.json.wal" / "caps.log")
    assert not report["torn"]


_COMPACT = """
import sys
from repro.store.database import Database
db = Database(sys.argv[1])
caps = db["caps"]
for n in range(1, 11):
    caps.insert_one({"n": n})
caps.delete_many({"n": {"$lte": 7}})
db.compact_collection("caps")
"""


def test_mid_compaction_swap_crash_keeps_the_old_log(tmp_path):
    store = tmp_path / "store.json"
    code = _run_store_script(_COMPACT, store, "mid-compaction-swap@caps")
    assert code == wal.FAULT_EXIT_CODE

    root = tmp_path / "store.json.wal"
    # The new segment never replaced the log: full history still there.
    report = wal.verify_log(root / "caps.log")
    assert report["records"] == 11  # 10 puts + 1 tombstone
    assert not report["torn"]

    reopened = Database(store)
    assert [d["n"] for d in reopened["caps"].find()] == [8, 9, 10]
    # Recovery swept the orphaned temp segment.
    assert list(root.glob("*.compact-tmp")) == []
    # And a retried compaction completes.
    result = reopened.compact_collection("caps")
    assert result["compacted"]
    assert [d["n"] for d in Database(store)["caps"].find()] == [8, 9, 10]


def test_crash_mid_update_keeps_the_old_version(tmp_path):
    store = tmp_path / "store.json"
    script = """
import sys
from repro.store.database import Database
db = Database(sys.argv[1])
caps = db["caps"]
caps.insert_one({"n": 1, "v": "original"})
caps.update_one({"n": 1}, {"v": "updated"})
"""
    code = _run_store_script(script, store, "mid-append@caps:2")
    assert code == wal.FAULT_EXIT_CODE
    reopened = Database(store)
    assert reopened["caps"].find_one({"n": 1})["v"] == "original"
