"""Property-based tests for the document store.

Invariants:

* an indexed query returns exactly what a full scan returns;
* dump/load is the identity on find() results;
* range queries through the sorted index equal the predicate filter;
* ``update_if`` is a true compare-and-set: under any interleaving of
  claim attempts — sequential or genuinely concurrent — each document is
  won exactly once, by the first attempt that reaches it;
* WAL torn-tail recovery is *exact*: a log cut or bit-flipped at any byte
  offset replays to precisely the prefix of intact records — never one
  record short, never a corrupt record adopted.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import wal
from repro.store.collection import Collection
from repro.store.database import Database

field_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(min_size=0, max_size=8),
    st.none(),
)

documents = st.lists(
    st.fixed_dictionaries(
        {"group": st.sampled_from(["a", "b", "c"]), "value": st.integers(-50, 50)},
        optional={"extra": field_values},
    ),
    min_size=0,
    max_size=30,
)


@given(documents, st.sampled_from(["a", "b", "c"]))
@settings(max_examples=60)
def test_hash_index_equals_scan(docs, probe):
    plain = Collection("plain")
    indexed = Collection("indexed")
    indexed.create_index("group", "hash")
    plain.insert_many(docs)
    indexed.insert_many(docs)
    assert plain.find({"group": probe}) == indexed.find({"group": probe})


@given(documents, st.integers(-60, 60), st.integers(-60, 60))
@settings(max_examples=60)
def test_sorted_index_equals_scan(docs, bound1, bound2):
    low, high = min(bound1, bound2), max(bound1, bound2)
    plain = Collection("plain")
    indexed = Collection("indexed")
    indexed.create_index("value", "sorted")
    plain.insert_many(docs)
    indexed.insert_many(docs)
    query = {"value": {"$gte": low, "$lte": high}}
    assert plain.find(query) == indexed.find(query)


@given(documents)
@settings(max_examples=60)
def test_dump_load_round_trip(docs):
    c = Collection("c")
    c.create_index("group", "hash")
    c.insert_many(docs)
    restored = Collection.load(c.dump())
    assert restored.find() == c.find()
    assert restored.count({"group": "a"}) == c.count({"group": "a"})


@given(documents, st.sampled_from(["a", "b", "c"]))
@settings(max_examples=40)
def test_delete_then_count_consistent(docs, victim):
    c = Collection("c")
    c.create_index("group", "hash")
    c.insert_many(docs)
    before = c.count()
    removed = c.delete_many({"group": victim})
    assert c.count() == before - removed
    assert c.count({"group": victim}) == 0


# -- update_if: compare-and-set ------------------------------------------------

#: An interleaving: which worker attempts to claim which job slot, in what
#: order.  Jobs are claimable exactly once (state queued -> running).
claim_schedules = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 9)),  # (job index, worker id)
    min_size=0,
    max_size=40,
)


@given(claim_schedules)
@settings(max_examples=80)
def test_update_if_claims_match_sequential_model(schedule):
    """Any interleaving of CAS claims equals the first-wins reference model."""
    n_jobs = 5
    c = Collection("jobs")
    c.create_index("job", "hash")
    for job in range(n_jobs):
        c.insert_one({"job": job, "state": "queued", "worker": None})
    model: dict[int, int] = {}  # job -> winning worker (first attempt wins)
    for job, worker in schedule:
        won = c.update_if(
            {"job": job},
            {"state": "queued"},
            {"state": "running", "worker": worker},
        )
        if job not in model:
            model[job] = worker
            assert won is not None  # first attempt must win...
        else:
            assert won is None  # ...and every later one must lose
    for job in range(n_jobs):
        doc = c.find_one({"job": job})
        if job in model:
            assert (doc["state"], doc["worker"]) == ("running", model[job])
        else:
            assert (doc["state"], doc["worker"]) == ("queued", None)


@given(claim_schedules)
@settings(max_examples=60)
def test_update_if_failed_cas_changes_nothing(schedule):
    """A losing CAS must leave the document untouched, not half-applied."""
    c = Collection("jobs")
    c.insert_one({"job": 0, "state": "done", "worker": 7, "extra": "x"})
    before = c.find_one({"job": 0})
    for _job, worker in schedule:
        assert c.update_if(
            {"job": 0}, {"state": "queued"}, {"state": "running", "worker": worker}
        ) is None
    assert c.find_one({"job": 0}) == before


def test_update_if_is_atomic_under_real_threads():
    """Genuinely concurrent claimers: every job won exactly once, total
    wins == total jobs — the exactly-once property lease claiming needs."""
    n_jobs, n_workers = 25, 8
    c = Collection("jobs")
    c.create_index("job", "hash")
    for job in range(n_jobs):
        c.insert_one({"job": job, "state": "queued", "worker": None})
    wins: list[list[int]] = [[] for _ in range(n_workers)]
    barrier = threading.Barrier(n_workers)

    def claimer(worker: int) -> None:
        barrier.wait()  # maximise contention: everyone starts together
        for job in range(n_jobs):
            if c.update_if(
                {"job": job},
                {"state": "queued"},
                {"state": "running", "worker": worker},
            ) is not None:
                wins[worker].append(job)

    threads = [
        threading.Thread(target=claimer, args=(worker,))
        for worker in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    claimed = [job for per_worker in wins for job in per_worker]
    assert sorted(claimed) == list(range(n_jobs))  # once each, none missed
    for job in range(n_jobs):
        doc = c.find_one({"job": job})
        assert doc["state"] == "running"
        assert job in wins[doc["worker"]]  # the stamp matches the winner

# -- WAL torn-tail recovery ----------------------------------------------------


def _record_stream(records):
    """Encode ``records`` back-to-back; returns (bytes, record boundaries)."""
    buffer = b""
    boundaries = [0]
    for record in records:
        buffer += wal.encode_record(record)
        boundaries.append(len(buffer))
    return buffer, boundaries


_TAIL_RECORDS = [
    {"op": "put", "doc": {"_id": i, "value": "x" * (i % 7), "i": i}}
    for i in range(6)
]


def test_truncation_at_every_byte_offset_recovers_exact_prefix():
    """Cut the stream everywhere: replay yields exactly the whole records
    before the cut, flags a torn tail iff the cut is mid-record."""
    buffer, boundaries = _record_stream(_TAIL_RECORDS)
    for cut in range(len(buffer) + 1):
        recovered, valid_end, torn = wal.decode_records(buffer[:cut])
        whole = bisect_right(boundaries, cut) - 1
        assert recovered == _TAIL_RECORDS[:whole]
        assert valid_end == boundaries[whole]
        assert torn == (cut != boundaries[whole])


def test_bit_flip_at_every_byte_offset_never_yields_a_wrong_record():
    """Flip one byte anywhere: the checksum (or framing) must stop replay at
    the corrupted record's boundary — corruption never decodes as data."""
    buffer, boundaries = _record_stream(_TAIL_RECORDS)
    for position in range(len(buffer)):
        corrupted = bytearray(buffer)
        corrupted[position] ^= 0xFF
        recovered, valid_end, _torn = wal.decode_records(bytes(corrupted))
        damaged = bisect_right(boundaries, position) - 1
        # Replay stops at (or before) the damaged record; every record it
        # *did* return is byte-identical to what was written.
        assert len(recovered) <= damaged
        assert recovered == _TAIL_RECORDS[: len(recovered)]
        assert valid_end <= boundaries[damaged]


def test_database_reopen_after_truncation_at_every_offset(tmp_path):
    """End-to-end: truncate the live log at every offset, reopen, and the
    store must equal the replay of the surviving record prefix."""
    path = tmp_path / "store.json"
    database = Database(path)
    caps = database["caps"]
    caps.create_index("i", "hash")
    for i in range(4):
        caps.insert_one({"i": i})
    caps.delete_many({"i": 1})
    caps.update_one({"i": 2}, {"value": "updated"})

    log_path = tmp_path / "store.json.wal" / "caps.log"
    pristine = log_path.read_bytes()
    _, boundaries = _record_stream([])  # noqa: F841 - clarity only
    records, _end, torn = wal.decode_records(pristine)
    assert not torn

    # The expected state after replaying records[:n], for each n.
    def replay(prefix):
        collection = Collection("caps")
        for record in prefix:
            collection.apply_wal_record(record)
        return collection.find()

    offsets = [0]
    for record in records:
        offsets.append(offsets[-1] + len(wal.encode_record(record)))

    for cut in range(len(pristine) + 1):
        target = tmp_path / "cut" / "store.json.wal"
        target.mkdir(parents=True, exist_ok=True)
        for entry in (tmp_path / "store.json.wal").iterdir():
            if entry.name == "caps.log":
                (target / entry.name).write_bytes(pristine[:cut])
            else:
                (target / entry.name).write_bytes(entry.read_bytes())
        reopened = Database(tmp_path / "cut" / "store.json")
        whole = bisect_right(offsets, cut) - 1
        assert reopened["caps"].find() == replay(records[:whole])
        # Recovery truncated the torn tail in place.
        assert (target / "caps.log").stat().st_size == offsets[whole]
        for side in target.glob("*.corrupt-*"):
            side.unlink()
        import shutil

        shutil.rmtree(tmp_path / "cut")
