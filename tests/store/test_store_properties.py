"""Property-based tests for the document store.

Invariants:

* an indexed query returns exactly what a full scan returns;
* dump/load is the identity on find() results;
* range queries through the sorted index equal the predicate filter.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.collection import Collection

field_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(min_size=0, max_size=8),
    st.none(),
)

documents = st.lists(
    st.fixed_dictionaries(
        {"group": st.sampled_from(["a", "b", "c"]), "value": st.integers(-50, 50)},
        optional={"extra": field_values},
    ),
    min_size=0,
    max_size=30,
)


@given(documents, st.sampled_from(["a", "b", "c"]))
@settings(max_examples=60)
def test_hash_index_equals_scan(docs, probe):
    plain = Collection("plain")
    indexed = Collection("indexed")
    indexed.create_index("group", "hash")
    plain.insert_many(docs)
    indexed.insert_many(docs)
    assert plain.find({"group": probe}) == indexed.find({"group": probe})


@given(documents, st.integers(-60, 60), st.integers(-60, 60))
@settings(max_examples=60)
def test_sorted_index_equals_scan(docs, bound1, bound2):
    low, high = min(bound1, bound2), max(bound1, bound2)
    plain = Collection("plain")
    indexed = Collection("indexed")
    indexed.create_index("value", "sorted")
    plain.insert_many(docs)
    indexed.insert_many(docs)
    query = {"value": {"$gte": low, "$lte": high}}
    assert plain.find(query) == indexed.find(query)


@given(documents)
@settings(max_examples=60)
def test_dump_load_round_trip(docs):
    c = Collection("c")
    c.create_index("group", "hash")
    c.insert_many(docs)
    restored = Collection.load(c.dump())
    assert restored.find() == c.find()
    assert restored.count({"group": "a"}) == c.count({"group": "a"})


@given(documents, st.sampled_from(["a", "b", "c"]))
@settings(max_examples=40)
def test_delete_then_count_consistent(docs, victim):
    c = Collection("c")
    c.create_index("group", "hash")
    c.insert_many(docs)
    before = c.count()
    removed = c.delete_many({"group": victim})
    assert c.count() == before - removed
    assert c.count({"group": victim}) == 0
