"""Unit tests for the aggregation pipeline."""

from __future__ import annotations

import pytest

from repro.store.aggregate import aggregate
from repro.store.collection import Collection
from repro.store.query import QueryError

DOCS = [
    {"dataset": "santander", "support": 10, "attrs": ["t", "v"]},
    {"dataset": "santander", "support": 30, "attrs": ["t", "l"]},
    {"dataset": "china6", "support": 20, "attrs": ["pm25", "so2"]},
    {"dataset": "china6", "support": 40, "attrs": ["pm25"]},
    {"dataset": "covid19", "support": 5, "attrs": []},
]


class TestMatchSortLimit:
    def test_match(self):
        out = aggregate(DOCS, [{"$match": {"dataset": "china6"}}])
        assert len(out) == 2

    def test_sort_ascending_descending(self):
        out = aggregate(DOCS, [{"$sort": {"support": 1}}])
        assert [d["support"] for d in out] == [5, 10, 20, 30, 40]
        out = aggregate(DOCS, [{"$sort": {"support": -1}}])
        assert out[0]["support"] == 40

    def test_sort_missing_field_last(self):
        docs = DOCS + [{"dataset": "x"}]
        out = aggregate(docs, [{"$sort": {"support": 1}}])
        assert out[-1] == {"dataset": "x"}

    def test_limit_skip(self):
        out = aggregate(DOCS, [{"$sort": {"support": -1}}, {"$skip": 1}, {"$limit": 2}])
        assert [d["support"] for d in out] == [30, 20]

    def test_bad_sort(self):
        with pytest.raises(QueryError):
            aggregate(DOCS, [{"$sort": {"support": 2}}])

    def test_bad_limit(self):
        with pytest.raises(QueryError):
            aggregate(DOCS, [{"$limit": -1}])


class TestGroup:
    def test_group_count_per_dataset(self):
        out = aggregate(DOCS, [
            {"$group": {"_id": "$dataset", "n": {"$count": 1}}},
            {"$sort": {"_id": 1}},
        ])
        assert out == [
            {"_id": "china6", "n": 2},
            {"_id": "covid19", "n": 1},
            {"_id": "santander", "n": 2},
        ]

    def test_group_sum_avg_min_max(self):
        out = aggregate(DOCS, [
            {"$group": {
                "_id": "$dataset",
                "total": {"$sum": "$support"},
                "mean": {"$avg": "$support"},
                "lo": {"$min": "$support"},
                "hi": {"$max": "$support"},
            }},
            {"$match": {"_id": "china6"}},
        ])
        assert out == [{"_id": "china6", "total": 60, "mean": 30.0, "lo": 20, "hi": 40}]

    def test_group_all_with_none_id(self):
        out = aggregate(DOCS, [
            {"$group": {"_id": None, "total": {"$sum": "$support"}}},
        ])
        assert out == [{"_id": None, "total": 105}]

    def test_group_push(self):
        out = aggregate(DOCS, [
            {"$match": {"dataset": "santander"}},
            {"$group": {"_id": "$dataset", "supports": {"$push": "$support"}}},
        ])
        assert out[0]["supports"] == [10, 30]

    def test_group_requires_id(self):
        with pytest.raises(QueryError, match="_id"):
            aggregate(DOCS, [{"$group": {"n": {"$count": 1}}}])

    def test_unknown_accumulator(self):
        with pytest.raises(QueryError, match="accumulator"):
            aggregate(DOCS, [{"$group": {"_id": None, "x": {"$median": "$support"}}}])

    def test_avg_empty_group_is_none(self):
        out = aggregate(
            [{"k": "a"}], [{"$group": {"_id": "$k", "m": {"$avg": "$support"}}}]
        )
        assert out[0]["m"] is None


class TestProjectUnwind:
    def test_project_keep(self):
        out = aggregate(DOCS[:1], [{"$project": {"dataset": 1}}])
        assert out == [{"dataset": "santander"}]

    def test_project_rename(self):
        out = aggregate(DOCS[:1], [{"$project": {"name": "$dataset"}}])
        assert out == [{"name": "santander"}]

    def test_project_bad_rule(self):
        with pytest.raises(QueryError):
            aggregate(DOCS, [{"$project": {"x": 7}}])

    def test_unwind(self):
        out = aggregate(DOCS[:1], [{"$unwind": "$attrs"}])
        assert [d["attrs"] for d in out] == ["t", "v"]

    def test_unwind_empty_array_drops_doc(self):
        out = aggregate([{"attrs": []}], [{"$unwind": "$attrs"}])
        assert out == []

    def test_unwind_then_group_counts_attribute_frequency(self):
        out = aggregate(DOCS, [
            {"$unwind": "$attrs"},
            {"$group": {"_id": "$attrs", "n": {"$count": 1}}},
            {"$sort": {"n": -1}},
        ])
        assert out[0] == {"_id": "pm25", "n": 2} or out[0] == {"_id": "t", "n": 2}


class TestPipelineErrors:
    def test_unknown_stage(self):
        with pytest.raises(QueryError, match="unknown pipeline stage"):
            aggregate(DOCS, [{"$lookup": {}}])

    def test_multi_operator_stage(self):
        with pytest.raises(QueryError, match="single-operator"):
            aggregate(DOCS, [{"$match": {}, "$limit": 1}])

    def test_input_documents_not_mutated(self):
        docs = [{"a": 1}]
        aggregate(docs, [{"$project": {"a": 1}}])
        assert docs == [{"a": 1}]


class TestCollectionIntegration:
    def test_aggregate_over_collection(self):
        c = Collection("caps")
        c.insert_many(DOCS)
        out = c.aggregate([
            {"$group": {"_id": "$dataset", "best": {"$max": "$support"}}},
            {"$sort": {"best": -1}},
            {"$limit": 1},
        ])
        assert out == [{"_id": "china6", "best": 40}]
