"""The versioned resource API: the ISSUE-4 acceptance criteria.

* results are first-class resources (``201 Location``, stable keys, links);
* CAP pages concatenated over all offsets reproduce the legacy
  ``POST /mine`` CAP list byte-identically;
* conditional GETs revalidate via ETag/If-None-Match with a 304;
* every legacy route still answers through its v1 shim with a
  ``Deprecation`` header (and a ``Link`` to its successor);
* upload sessions are race-safe (concurrent ``begin`` → 409) and
  ``DELETE`` of a never-uploaded dataset invalidates nothing.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_santander
from repro.jobs import TERMINAL_STATES
from repro.server.app import TestClient, create_app

PARAMS = recommended_parameters("santander").to_document()
TIMEOUT = 60.0


@pytest.fixture
def dataset():
    return generate_santander(seed=2, neighbourhoods=4, steps=240)


@pytest.fixture
def app(dataset):
    app = create_app()
    client = TestClient(app)
    response = client.upload_dataset(dataset, chunk_lines=1000)
    assert response.status == 201, response.json()
    yield app
    app.close()


@pytest.fixture
def client(app):
    return TestClient(app)


def create_result(client, params=PARAMS) -> tuple[str, dict]:
    response = client.post(
        "/api/v1/datasets/santander/results", json_body={"parameters": params}
    )
    assert response.status == 201, response.json()
    return response.json()["key"], response.json()


class TestResultResources:
    def test_post_creates_result_with_location(self, client):
        response = client.post(
            "/api/v1/datasets/santander/results", json_body={"parameters": PARAMS}
        )
        assert response.status == 201
        body = response.json()
        assert response.headers["Location"] == f"/api/v1/results/{body['key']}"
        assert response.headers["ETag"]
        assert body["num_caps"] > 0
        assert body["from_cache"] is False
        assert body["links"]["caps"] == f"/api/v1/results/{body['key']}/caps"

    def test_repeat_post_dedups_onto_same_resource(self, client):
        key, _ = create_result(client)
        again = client.post(
            "/api/v1/datasets/santander/results", json_body={"parameters": PARAMS}
        )
        assert again.status == 201
        assert again.json()["key"] == key
        assert again.json()["from_cache"] is True

    def test_post_requires_parameters(self, client):
        response = client.post("/api/v1/datasets/santander/results", json_body={})
        assert response.status == 400
        assert response.json()["error"]["code"] == "missing_fields"

    def test_post_unknown_dataset(self, client):
        response = client.post(
            "/api/v1/datasets/ghost/results", json_body={"parameters": PARAMS}
        )
        assert response.status == 404
        assert response.json()["error"]["code"] == "unknown_dataset"

    def test_metadata_is_small_and_linked(self, client):
        key, created = create_result(client)
        meta = client.get(f"/api/v1/results/{key}")
        assert meta.status == 200
        body = meta.json()
        assert body["key"] == key
        assert body["dataset"] == "santander"
        assert body["num_caps"] == created["num_caps"]
        assert "caps" not in body  # the CAP list is the …/caps sub-resource
        assert body["links"]["self"] == f"/api/v1/results/{key}"

    def test_unknown_result_404(self, client):
        response = client.get("/api/v1/results/deadbeef")
        assert response.status == 404
        assert response.json()["error"]["code"] == "unknown_result"

    def test_list_results_for_dataset(self, client):
        key, _ = create_result(client)
        loose = dict(PARAMS, min_support=5)
        other_key, _ = create_result(client, loose)
        listing = client.get("/api/v1/datasets/santander/results")
        assert listing.status == 200
        keys = {entry["key"] for entry in listing.json()["results"]}
        assert keys == {key, other_key}

    def test_delete_result(self, client):
        key, _ = create_result(client)
        assert client.delete(f"/api/v1/results/{key}").status == 204
        assert client.get(f"/api/v1/results/{key}").status == 404
        assert client.delete(f"/api/v1/results/{key}").status == 404

    def test_delete_dataset_204_and_404(self, client):
        assert client.delete("/api/v1/datasets/santander").status == 204
        assert client.delete("/api/v1/datasets/santander").status == 404


class TestCapsPagination:
    def test_pages_concatenate_to_legacy_mine_byte_identically(self, client):
        """The acceptance criterion: v1 pages ≡ legacy full payload."""
        legacy = client.post(
            "/mine", json_body={"dataset": "santander", "parameters": PARAMS}
        )
        assert legacy.status == 200
        legacy_caps = legacy.json()["caps"]
        key, created = create_result(client)
        assert created["from_cache"] is True  # same underlying resource

        limit = 7
        pages: list[dict] = []
        offset = 0
        while True:
            page = client.get(
                f"/api/v1/results/{key}/caps?offset={offset}&limit={limit}"
            )
            assert page.status == 200
            body = page.json()
            assert body["total"] == len(legacy_caps)
            pages.extend(body["caps"])
            if offset + limit >= body["total"]:
                assert 'rel="next"' not in page.headers["Link"]
                break
            assert 'rel="next"' in page.headers["Link"]
            offset += limit
        assert json.dumps(pages, sort_keys=True) == json.dumps(
            legacy_caps, sort_keys=True
        )

    def test_default_page_limit(self, client):
        key, _ = create_result(client)
        page = client.get(f"/api/v1/results/{key}/caps")
        assert page.json()["offset"] == 0
        assert page.json()["limit"] == 100

    def test_link_header_relations(self, client):
        key, _ = create_result(client)
        total = client.get(f"/api/v1/results/{key}/caps").json()["total"]
        assert total > 4
        middle = client.get(f"/api/v1/results/{key}/caps?offset=2&limit=2")
        link = middle.headers["Link"]
        for rel in ("first", "last", "prev", "next"):
            assert f'rel="{rel}"' in link
        first = client.get(f"/api/v1/results/{key}/caps?offset=0&limit=2")
        assert 'rel="prev"' not in first.headers["Link"]

    def test_offset_beyond_total_is_empty_page(self, client):
        key, _ = create_result(client)
        page = client.get(f"/api/v1/results/{key}/caps?offset=100000&limit=10")
        assert page.status == 200
        assert page.json()["caps"] == []

    def test_sensor_filter_uses_inverted_index(self, client, dataset):
        key, _ = create_result(client)
        all_caps = client.get(f"/api/v1/results/{key}/caps?limit=1000").json()["caps"]
        sensor = all_caps[0]["sensors"][0]
        expected = [cap for cap in all_caps if sensor in cap["sensors"]]
        page = client.get(f"/api/v1/results/{key}/caps?sensor={sensor}&limit=1000")
        assert page.json()["total"] == len(expected)
        assert page.json()["caps"] == expected
        assert f"sensor={sensor}" in page.headers["Link"]

    def test_attribute_filter(self, client):
        key, _ = create_result(client)
        all_caps = client.get(f"/api/v1/results/{key}/caps?limit=1000").json()["caps"]
        attribute = all_caps[0]["attributes"][0]
        expected = [cap for cap in all_caps if attribute in cap["attributes"]]
        page = client.get(
            f"/api/v1/results/{key}/caps?attribute={attribute}&limit=1000"
        )
        assert page.json()["total"] == len(expected)
        assert page.json()["caps"] == expected

    @pytest.mark.parametrize(
        "query", ["offset=-1", "offset=x", "limit=0", "limit=1001", "limit=ten"]
    )
    def test_invalid_pagination_rejected(self, client, query):
        key, _ = create_result(client)
        response = client.get(f"/api/v1/results/{key}/caps?{query}")
        assert response.status == 400
        assert response.json()["error"]["code"] == "invalid_pagination"


class TestConditionalGets:
    def test_repeated_get_with_etag_is_304(self, client):
        key, _ = create_result(client)
        first = client.get(f"/api/v1/results/{key}")
        etag = first.headers["ETag"]
        again = client.get(f"/api/v1/results/{key}", headers={"If-None-Match": etag})
        assert again.status == 304
        assert again.body == b""
        assert again.headers["ETag"] == etag

    def test_stale_etag_gets_fresh_representation(self, client):
        key, _ = create_result(client)
        response = client.get(
            f"/api/v1/results/{key}", headers={"If-None-Match": '"stale"'}
        )
        assert response.status == 200

    def test_if_none_match_star(self, client):
        key, _ = create_result(client)
        assert (
            client.get(f"/api/v1/results/{key}", headers={"If-None-Match": "*"}).status
            == 304
        )

    def test_ambiguous_filter_combinations_get_distinct_etags(self, client):
        # "sensor=s-1" and "sensor=s&attribute=1" must never share an ETag
        # (a naive '-'-joined suffix would collide).
        key, _ = create_result(client)
        one = client.get(f"/api/v1/results/{key}/caps?sensor=s-1")
        two = client.get(f"/api/v1/results/{key}/caps?sensor=s&attribute=1")
        assert one.headers["ETag"] != two.headers["ETag"]

    def test_caps_pages_validate_per_page(self, client):
        key, _ = create_result(client)
        page_a = client.get(f"/api/v1/results/{key}/caps?offset=0&limit=2")
        page_b = client.get(f"/api/v1/results/{key}/caps?offset=2&limit=2")
        assert page_a.headers["ETag"] != page_b.headers["ETag"]
        revalidated = client.get(
            f"/api/v1/results/{key}/caps?offset=0&limit=2",
            headers={"If-None-Match": page_a.headers["ETag"]},
        )
        assert revalidated.status == 304


class TestAsyncJobsV1:
    def test_async_submission_links_through_to_result(self, client):
        submitted = client.post(
            "/api/v1/datasets/santander/results",
            json_body={"parameters": PARAMS, "mode": "async"},
        )
        assert submitted.status == 202
        body = submitted.json()
        job_url = submitted.headers["Location"]
        assert job_url == body["links"]["self"] == f"/api/v1/jobs/{body['job_id']}"
        assert body["deduplicated"] is False

        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            doc = client.get(job_url).json()
            if doc["state"] in TERMINAL_STATES:
                break
            time.sleep(0.02)
        assert doc["state"] == "succeeded", doc.get("error")
        assert doc["links"]["result"] == f"/api/v1/results/{doc['result_key']}"
        assert "result" not in doc  # v1 links instead of inlining
        result = client.get(doc["links"]["result"])
        assert result.status == 200
        assert result.json()["num_caps"] > 0

    def test_job_listing_carries_links(self, client):
        submitted = client.post(
            "/api/v1/datasets/santander/results",
            json_body={"parameters": PARAMS, "mode": "async"},
        )
        job_id = submitted.json()["job_id"]
        jobs = client.get("/api/v1/jobs").json()["jobs"]
        assert [job["job_id"] for job in jobs] == [job_id]
        assert jobs[0]["links"]["self"] == f"/api/v1/jobs/{job_id}"
        assert client.get("/api/v1/jobs?status=bogus").status == 400

    def test_cancel_unknown_and_finished(self, client):
        assert client.post("/api/v1/jobs/job-404-x/cancel").status == 404
        submitted = client.post(
            "/api/v1/datasets/santander/results",
            json_body={"parameters": PARAMS, "mode": "async"},
        )
        job_id = submitted.json()["job_id"]
        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            if client.get(f"/api/v1/jobs/{job_id}").json()["state"] in TERMINAL_STATES:
                break
            time.sleep(0.02)
        response = client.post(f"/api/v1/jobs/{job_id}/cancel")
        assert response.status == 409
        assert response.json()["error"]["code"] == "job_finished"


class TestVizContentNegotiation:
    def test_default_is_html(self, client):
        response = client.get("/api/v1/datasets/santander/viz/map")
        assert response.status == 200
        assert "text/html" in response.headers["Content-Type"]
        assert response.body.startswith(b"<!DOCTYPE html>")

    def test_svg_via_accept(self, client):
        response = client.get(
            "/api/v1/datasets/santander/viz/map",
            headers={"Accept": "image/svg+xml"},
        )
        assert response.status == 200
        assert "image/svg+xml" in response.headers["Content-Type"]
        assert response.body.startswith(b"<svg")

    def test_quality_values_respected(self, client):
        response = client.get(
            "/api/v1/datasets/santander/viz/map",
            headers={"Accept": "text/html;q=0.1, image/svg+xml;q=0.9"},
        )
        assert "image/svg+xml" in response.headers["Content-Type"]

    def test_wildcard_accept_defaults_to_html(self, client):
        response = client.get(
            "/api/v1/datasets/santander/viz/map", headers={"Accept": "*/*"}
        )
        assert "text/html" in response.headers["Content-Type"]

    def test_unsatisfiable_accept_is_406(self, client):
        response = client.get(
            "/api/v1/datasets/santander/viz/map",
            headers={"Accept": "application/json"},
        )
        assert response.status == 406
        assert response.json()["error"]["code"] == "not_acceptable"

    def test_timeseries_and_heatmap_negotiate_too(self, client, dataset):
        ids = ",".join(dataset.sensor_ids[:2])
        for path in (
            f"/api/v1/datasets/santander/viz/timeseries?sensors={ids}",
            f"/api/v1/datasets/santander/viz/heatmap?sensors={ids}",
        ):
            svg = client.get(path, headers={"Accept": "image/svg+xml"})
            assert svg.status == 200 and svg.body.startswith(b"<svg")


class TestServiceDocuments:
    def test_v1_index_links(self, client):
        body = client.get("/api/v1").json()
        assert body["api_version"] == "v1"
        assert body["links"]["schema"] == "/api/v1/schema"

    def test_correlated_sensors(self, client):
        key, _ = create_result(client)
        caps = client.get(f"/api/v1/results/{key}/caps?limit=1").json()["caps"]
        sensor = caps[0]["sensors"][0]
        response = client.get(
            f"/api/v1/datasets/santander/sensors/{sensor}/correlated"
        )
        assert response.status == 200
        assert response.json()["correlated"]
        legacy = client.get(f"/caps/santander/sensors/{sensor}")
        assert legacy.json()["correlated"] == response.json()["correlated"]

    def test_admin_endpoints(self, client):
        stats = client.get("/api/v1/admin/stats").json()
        assert "store" in stats and "cache" in stats and "jobs" in stats
        by_dataset = client.get("/api/v1/admin/results-by-dataset")
        assert by_dataset.status == 200


# Concrete requests exercising every legacy route (the shim inventory).
# A legacy route registered without an entry here fails
# ``test_every_legacy_route_is_covered`` — coverage can't silently rot.
LEGACY_REQUESTS: dict[tuple[str, str], dict] = {
    ("GET", "/"): {},
    ("GET", "/datasets"): {},
    ("GET", "/datasets/{name}"): {"path": "/datasets/santander"},
    ("DELETE", "/datasets/{name}"): {"path": "/datasets/second"},
    ("POST", "/datasets/{name}/upload/begin"): {"upload_step": "begin"},
    ("POST", "/datasets/{name}/upload/chunk"): {"upload_step": "chunk"},
    ("POST", "/datasets/{name}/upload/finish"): {"upload_step": "finish"},
    ("POST", "/datasets/{name}/upload/abort"): {"upload_step": "abort"},
    ("POST", "/mine"): {
        "json": {"dataset": "santander", "parameters": PARAMS}
    },
    ("GET", "/jobs"): {},
    ("GET", "/jobs/{job_id}"): {"needs_job": True},
    ("POST", "/jobs/{job_id}/cancel"): {"needs_job": True, "expect": 409},
    ("GET", "/caps/{dataset}"): {"path": "/caps/santander"},
    ("GET", "/caps/{dataset}/sensors/{sensor_id}"): {"needs_sensor": True},
    ("GET", "/viz/{dataset}/map"): {"path": "/viz/santander/map"},
    ("GET", "/viz/{dataset}/heatmap"): {"path": "/viz/santander/heatmap"},
    ("GET", "/viz/{dataset}/timeseries"): {"needs_timeseries": True},
    ("GET", "/admin/stats"): {},
    ("GET", "/admin/results-by-dataset"): {},
}


class TestDeprecationShims:
    """Every legacy route answers, marked deprecated, pointing at v1."""

    def test_every_legacy_route_is_covered(self, app):
        legacy = {
            (r["method"], r["pattern"])
            for r in app.router.describe()
            if r["deprecated"]
        }
        assert legacy == set(LEGACY_REQUESTS), (
            "legacy route set changed; update LEGACY_REQUESTS"
        )

    def test_every_legacy_route_answers_with_deprecation_headers(
        self, app, client, dataset
    ):
        # Setup: a mined result, a finished job, a known sensor, a second
        # dataset to delete, and an upload session driven through the
        # legacy endpoints.
        mined = client.post(
            "/mine", json_body={"dataset": "santander", "parameters": PARAMS}
        ).json()
        sensor = mined["caps"][0]["sensors"][0]
        job_id = client.post(
            "/mine",
            json_body={"dataset": "santander", "parameters": PARAMS, "mode": "async"},
        ).json()["job_id"]
        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            if client.get(f"/jobs/{job_id}").json()["state"] in TERMINAL_STATES:
                break
            time.sleep(0.02)
        second = generate_santander(seed=5, neighbourhoods=2, steps=80)
        second.name = "second"
        assert client.upload_dataset(second, base="").status == 201  # legacy upload
        third = generate_santander(seed=6, neighbourhoods=2, steps=80)
        third.name = "third"

        for (method, pattern), spec in LEGACY_REQUESTS.items():
            if spec.get("upload_step"):
                continue  # exercised by the legacy upload_dataset call above
            path = spec.get("path", pattern)
            if spec.get("needs_job"):
                path = pattern.replace("{job_id}", job_id)
            if spec.get("needs_sensor"):
                path = f"/caps/santander/sensors/{sensor}"
            if spec.get("needs_timeseries"):
                path = f"/viz/santander/timeseries?sensors={sensor}"
            response = client.request(method, path, json_body=spec.get("json"))
            expected = spec.get("expect", (200, 202))
            expected = expected if isinstance(expected, tuple) else (expected,)
            assert response.status in expected, (method, path, response.json())
            assert response.headers.get("Deprecation") == "true", (method, path)
            if pattern != "/":
                assert "successor-version" in response.headers.get("Link", ""), (
                    method, path,
                )

        # The legacy upload calls above went through begin/chunk/finish;
        # check the deprecation headers on each step explicitly (errors
        # included — shims mark every answer, not just the happy path).
        begin = client.post(
            "/datasets/third/upload/begin",
            json_body={"location_csv": "id,attribute,lat,lon\n",
                       "attribute_csv": "t\n"},
        )
        assert begin.status == 201
        chunk = client.post("/datasets/third/upload/chunk", text_body="garbage")
        abort = client.post("/datasets/third/upload/abort")
        assert abort.status == 200  # legacy recovery path for wedged sessions
        finish = client.post("/datasets/third/upload/finish")
        assert finish.status == 409  # aborted: nothing left to finish
        for step in (begin, chunk, abort, finish):
            assert step.headers.get("Deprecation") == "true"
            assert "successor-version" in step.headers.get("Link", "")

    def test_legacy_error_responses_carry_deprecation_too(self, client):
        response = client.get("/datasets/ghost")
        assert response.status == 404
        assert response.headers.get("Deprecation") == "true"
        assert response.json() == {"error": "unknown dataset 'ghost'"}  # legacy shape


class TestUploadSessionSafety:
    def test_second_begin_conflicts(self, client):
        body = {"location_csv": "id,attribute,lat,lon\n", "attribute_csv": "t\n"}
        assert client.post("/api/v1/datasets/x/upload/begin", json_body=body).status == 201
        conflict = client.post("/api/v1/datasets/x/upload/begin", json_body=body)
        assert conflict.status == 409
        assert conflict.json()["error"]["code"] == "upload_in_progress"

    def test_abort_releases_the_session(self, client):
        body = {"location_csv": "id,attribute,lat,lon\n", "attribute_csv": "t\n"}
        assert client.post("/api/v1/datasets/x/upload/begin", json_body=body).status == 201
        assert client.post("/api/v1/datasets/x/upload/abort").status == 200
        assert client.post("/api/v1/datasets/x/upload/abort").status == 409
        assert client.post("/api/v1/datasets/x/upload/begin", json_body=body).status == 201

    def test_concurrent_begins_yield_exactly_one_session(self, client):
        body = {"location_csv": "id,attribute,lat,lon\n", "attribute_csv": "t\n"}
        barrier = threading.Barrier(8)
        statuses: list[int] = []
        lock = threading.Lock()

        def begin():
            barrier.wait()
            response = client.post("/api/v1/datasets/raced/upload/begin", json_body=body)
            with lock:
                statuses.append(response.status)

        threads = [threading.Thread(target=begin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(statuses) == [201] + [409] * 7

    def test_legacy_begin_shares_the_409(self, client):
        body = {"location_csv": "id,attribute,lat,lon\n", "attribute_csv": "t\n"}
        assert client.post("/datasets/y/upload/begin", json_body=body).status == 201
        assert client.post("/datasets/y/upload/begin", json_body=body).status == 409


class TestDeleteDatasetInvalidation:
    def test_delete_of_unknown_dataset_invalidates_nothing(self, app, client):
        generation = app.state.dataset_generation("santander")
        key, _ = create_result(client)
        assert client.delete("/api/v1/datasets/ghost").status == 404
        # No generation bump anywhere, no cache invalidation, no job cancels.
        assert app.state.dataset_generation("ghost") == 0
        assert app.state.dataset_generation("santander") == generation
        assert client.get(f"/api/v1/results/{key}").status == 200

    def test_delete_of_unknown_dataset_leaves_jobs_alone(self, app, client, monkeypatch):
        from repro.core.miner import MiningResult, MiscelaMiner

        started = threading.Event()
        release = threading.Event()

        def slow_mine(self, dataset, control=None):
            started.set()
            release.wait(TIMEOUT)
            if control is not None:
                control.checkpoint()
            return MiningResult(dataset_name=dataset.name, parameters=self.params, caps=[])

        monkeypatch.setattr(MiscelaMiner, "mine", slow_mine)
        submitted = client.post(
            "/api/v1/datasets/santander/results",
            json_body={"parameters": PARAMS, "mode": "async"},
        )
        job_url = submitted.headers["Location"]
        assert started.wait(TIMEOUT)
        assert client.delete("/api/v1/datasets/ghost").status == 404
        doc = client.get(job_url).json()
        assert doc["state"] == "running"
        assert doc["cancel_requested"] is False
        release.set()
        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            doc = client.get(job_url).json()
            if doc["state"] in TERMINAL_STATES:
                break
            time.sleep(0.02)
        assert doc["state"] == "succeeded"
