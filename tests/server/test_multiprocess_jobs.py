"""Two server processes, one store: dedup, takeover, exactly-once.

The multi-process half of the ISSUE-5 acceptance criteria, driven through
the fault-injection harness: two real ``repro serve`` subprocesses share
one snapshot path, and every claim races through the compare-and-set
protocol of the durable registry.

* identical submissions to *different* servers dedup onto one job, and
  that job executes exactly once;
* a server killed ``-9`` mid-mine loses its lease, the surviving server
  reclaims and finishes the job, and the result is byte-identical to a
  clean mine;
* a burst of distinct jobs contended for by both servers' workers executes
  each job exactly once, wherever it lands.
"""

from __future__ import annotations

import time

import pytest

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_covid19

from tests.jobs.harness import (
    ServerProcess,
    caps_page_bytes,
    poll_job,
    read_exec_log,
    reference_caps_bytes,
    submit_async,
    upload_dataset,
    wait_for_exec_entries,
    wait_for_state,
)

DATASET_NAME = "covid19"


@pytest.fixture(scope="module")
def dataset():
    return generate_covid19(seed=7)


@pytest.fixture(scope="module")
def params_doc():
    return recommended_parameters(DATASET_NAME).to_document()


@pytest.fixture(scope="module")
def reference_page(dataset, params_doc):
    return reference_caps_bytes(dataset, params_doc)


def test_cross_process_dedup_executes_once(
    tmp_path, dataset, params_doc, reference_page
):
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    with ServerProcess(
        store, worker_id="alpha", exec_log=exec_log, lease_seconds=5.0,
        worker_poll=0.1, mine_delay=1.0,
    ) as alpha:
        upload_dataset(alpha, dataset)
        with ServerProcess(
            store, worker_id="beta", exec_log=exec_log, lease_seconds=5.0,
            worker_poll=0.1, mine_delay=1.0,
        ) as beta:
            submitted = submit_async(alpha, DATASET_NAME, params_doc)
            job_id = submitted["job_id"]
            # The same submission against the *other* process rides the
            # same job — the registry on disk is the dedup authority.
            duplicate = submit_async(beta, DATASET_NAME, params_doc)
            assert duplicate["job_id"] == job_id
            assert duplicate["deduplicated"] is True

            final_a = poll_job(alpha, job_id)
            final_b = poll_job(beta, job_id)
            assert final_a["state"] == final_b["state"] == "succeeded"

            # Exactly one execution, by whichever worker won the claim.
            entries = [e for e in read_exec_log(exec_log) if e[0] == job_id]
            assert len(entries) == 1, entries
            assert entries[0][1] in ("alpha", "beta")

            # Both processes serve the same bytes, equal to a clean mine.
            key = final_a["result_key"]
            assert caps_page_bytes(alpha, key) == reference_page
            assert caps_page_bytes(beta, key) == reference_page


def test_lease_takeover_after_sigkill(tmp_path, dataset, params_doc, reference_page):
    """kill -9 one server mid-mine; the *other* reclaims and completes."""
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    with ServerProcess(
        store, worker_id="doomed", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1, mine_delay=30.0,
    ) as doomed:
        upload_dataset(doomed, dataset)
        submitted = submit_async(doomed, DATASET_NAME, params_doc)
        job_id = submitted["job_id"]
        running = wait_for_state(doomed, job_id, "running")
        assert running["worker_id"] == "doomed"
        wait_for_exec_entries(exec_log, job_id, count=1)  # execution underway
        # The survivor joins while the doomed server is still mining.
        with ServerProcess(
            store, worker_id="survivor", exec_log=exec_log, lease_seconds=1.0,
            worker_poll=0.1,
        ) as survivor:
            doomed.kill()

            final = poll_job(survivor, job_id)
            assert final["state"] == "succeeded"
            assert final["worker_id"] == "survivor"
            assert final["attempt"] == 2

            entries = [e for e in read_exec_log(exec_log) if e[0] == job_id]
            assert [(worker, attempt) for (_, worker, attempt) in entries] == [
                ("doomed", 1),
                ("survivor", 2),
            ]
            assert caps_page_bytes(survivor, final["result_key"]) == reference_page


def test_contended_burst_executes_each_job_once(tmp_path, dataset, params_doc):
    """Both servers' workers race a burst of distinct jobs; CAS claiming
    gives each job exactly one execution across the pair."""
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    variants = [
        {**params_doc, "min_support": support}
        for support in (2, 3, 4)
    ]
    with ServerProcess(
        store, worker_id="alpha", exec_log=exec_log, lease_seconds=5.0,
        worker_poll=0.05, mine_delay=0.3,
    ) as alpha:
        upload_dataset(alpha, dataset)
        with ServerProcess(
            store, worker_id="beta", exec_log=exec_log, lease_seconds=5.0,
            worker_poll=0.05, mine_delay=0.3,
        ) as beta:
            job_ids = []
            for variant in variants:
                submitted = submit_async(alpha, DATASET_NAME, variant)
                job_ids.append(submitted["job_id"])
            assert len(set(job_ids)) == len(variants)

            workers_seen = set()
            for job_id in job_ids:
                final = poll_job(beta, job_id)
                assert final["state"] == "succeeded", final
                workers_seen.add(final["worker_id"])
                entries = [e for e in read_exec_log(exec_log) if e[0] == job_id]
                assert len(entries) == 1, (job_id, entries)

            # Smoke: the lease counters in admin stats agree on both ends.
            for server in (alpha, beta):
                status, stats = server.get_json("/api/v1/admin/stats")
                assert status == 200
                assert stats["jobs"]["succeeded"] == len(variants)
                assert stats["jobs"]["leases"] == {"active": 0, "expired": 0}
