"""Unit tests for the URL router."""

from __future__ import annotations

import pytest

from repro.server.http import HTTPError, Request, json_response
from repro.server.routing import Router


@pytest.fixture
def router() -> Router:
    r = Router()

    @r.get("/datasets")
    def list_datasets(request):
        return json_response(["a"])

    @r.get("/datasets/{name}")
    def get_dataset(request):
        return json_response({"name": request.path_params["name"]})

    @r.post("/datasets/{name}/upload/chunk")
    def chunk(request):
        return json_response({"ok": True})

    @r.delete("/datasets/{name}")
    def delete(request):
        return json_response({"deleted": request.path_params["name"]})

    return r


class TestDispatch:
    def test_static_route(self, router):
        resp = router.dispatch(Request("GET", "/datasets"))
        assert resp.json() == ["a"]

    def test_path_params_captured(self, router):
        resp = router.dispatch(Request("GET", "/datasets/santander"))
        assert resp.json() == {"name": "santander"}

    def test_nested_params(self, router):
        resp = router.dispatch(Request("POST", "/datasets/x/upload/chunk"))
        assert resp.json() == {"ok": True}

    def test_404(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("GET", "/nope"))
        assert exc.value.status == 404

    def test_405_when_path_exists(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("POST", "/datasets"))
        assert exc.value.status == 405

    def test_method_match_on_same_pattern(self, router):
        resp = router.dispatch(Request("DELETE", "/datasets/x"))
        assert resp.json() == {"deleted": "x"}

    def test_param_does_not_cross_segments(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("GET", "/datasets/a/b"))
        assert exc.value.status == 404

    def test_routes_listing(self, router):
        patterns = [p for _, p in router.routes()]
        assert "/datasets/{name}" in patterns


class TestRegistration:
    def test_bad_method(self):
        r = Router()
        with pytest.raises(ValueError, match="method"):
            r.add("FETCH", "/x", lambda req: json_response({}))

    def test_pattern_must_start_with_slash(self):
        r = Router()
        with pytest.raises(ValueError, match="start with"):
            r.add("GET", "x", lambda req: json_response({}))

    def test_regex_chars_escaped(self):
        r = Router()
        r.add("GET", "/a.b", lambda req: json_response({"ok": 1}))
        with pytest.raises(HTTPError):
            r.dispatch(Request("GET", "/aXb"))  # '.' must not be a wildcard
        assert r.dispatch(Request("GET", "/a.b")).json() == {"ok": 1}
