"""Unit tests for the URL router."""

from __future__ import annotations

import pytest

from repro.server.http import HTTPError, Request, json_response
from repro.server.routing import Router


@pytest.fixture
def router() -> Router:
    r = Router()

    @r.get("/datasets")
    def list_datasets(request):
        return json_response(["a"])

    @r.get("/datasets/{name}")
    def get_dataset(request):
        return json_response({"name": request.path_params["name"]})

    @r.post("/datasets/{name}/upload/chunk")
    def chunk(request):
        return json_response({"ok": True})

    @r.delete("/datasets/{name}")
    def delete(request):
        return json_response({"deleted": request.path_params["name"]})

    return r


class TestDispatch:
    def test_static_route(self, router):
        resp = router.dispatch(Request("GET", "/datasets"))
        assert resp.json() == ["a"]

    def test_path_params_captured(self, router):
        resp = router.dispatch(Request("GET", "/datasets/santander"))
        assert resp.json() == {"name": "santander"}

    def test_nested_params(self, router):
        resp = router.dispatch(Request("POST", "/datasets/x/upload/chunk"))
        assert resp.json() == {"ok": True}

    def test_404(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("GET", "/nope"))
        assert exc.value.status == 404

    def test_405_when_path_exists(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("POST", "/datasets"))
        assert exc.value.status == 405

    def test_method_match_on_same_pattern(self, router):
        resp = router.dispatch(Request("DELETE", "/datasets/x"))
        assert resp.json() == {"deleted": "x"}

    def test_param_does_not_cross_segments(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("GET", "/datasets/a/b"))
        assert exc.value.status == 404

    def test_routes_listing(self, router):
        patterns = [p for _, p in router.routes()]
        assert "/datasets/{name}" in patterns


class TestRegistration:
    def test_bad_method(self):
        r = Router()
        with pytest.raises(ValueError, match="method"):
            r.add("FETCH", "/x", lambda req: json_response({}))

    def test_pattern_must_start_with_slash(self):
        r = Router()
        with pytest.raises(ValueError, match="start with"):
            r.add("GET", "x", lambda req: json_response({}))

    def test_regex_chars_escaped(self):
        r = Router()
        r.add("GET", "/a.b", lambda req: json_response({"ok": 1}))
        with pytest.raises(HTTPError):
            r.dispatch(Request("GET", "/aXb"))  # '.' must not be a wildcard
        assert r.dispatch(Request("GET", "/a.b")).json() == {"ok": 1}


class TestErrorMetadata:
    """The 404/405 contract the v1 error envelope renders."""

    def test_404_carries_not_found_code(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("GET", "/api/v1/nope"))
        assert exc.value.status == 404
        assert exc.value.code == "not_found"

    def test_405_lists_allowed_methods(self, router):
        with pytest.raises(HTTPError) as exc:
            router.dispatch(Request("POST", "/datasets/x"))
        assert exc.value.status == 405
        assert exc.value.code == "method_not_allowed"
        assert exc.value.headers["Allow"] == "DELETE, GET"


class TestRouteMetadata:
    def test_summary_defaults_to_docstring(self):
        r = Router()

        @r.get("/x")
        def handler(request):
            """First line wins.

            Not this one.
            """
            return json_response({})

        description = r.describe()[0]
        assert description["summary"] == "First line wins."
        assert description["name"] == "handler"

    def test_declared_metadata_round_trips(self):
        r = Router()
        r.add(
            "GET", "/things/{thing_id}",
            lambda req: json_response({}),
            name="get_thing",
            summary="One thing.",
            query=({"name": "verbose", "type": "string", "description": "d"},),
            responses={"200": "the thing"},
            deprecated=True,
            successor="/api/v1/things/{thing_id}",
        )
        description = r.describe()[0]
        assert description["path_params"] == ["thing_id"]
        assert description["query"] == [
            {"name": "verbose", "type": "string", "description": "d"}
        ]
        assert description["responses"] == {"200": "the thing"}
        assert description["deprecated"] is True
        assert description["successor"] == "/api/v1/things/{thing_id}"

    def test_deprecated_route_gets_headers_on_dispatch(self):
        r = Router()
        r.add(
            "GET", "/old", lambda req: json_response({"ok": 1}),
            deprecated=True, successor="/api/v1/new",
        )
        response = r.dispatch(Request("GET", "/old"))
        assert response.headers["Deprecation"] == "true"
        assert response.headers["Link"] == '</api/v1/new>; rel="successor-version"'

    def test_active_route_gets_no_deprecation_headers(self, router):
        response = router.dispatch(Request("GET", "/datasets"))
        assert "Deprecation" not in response.headers

    def test_dispatch_records_matched_route(self, router):
        request = Request("GET", "/datasets/x")
        router.dispatch(request)
        assert request.route is not None
        assert request.route.pattern == "/datasets/{name}"
