"""Unit tests for the middleware stack."""

from __future__ import annotations

import logging

import pytest

from repro.data.validation import DatasetValidationError
from repro.server.http import HTTPError, Request, json_response
from repro.server.middleware import (
    body_limit_middleware,
    error_middleware,
    logging_middleware,
)


def ok_handler(request: Request):
    return json_response({"ok": True})


class TestErrorMiddleware:
    def test_passthrough(self):
        resp = error_middleware(ok_handler)(Request("GET", "/"))
        assert resp.status == 200

    def test_http_error_rendered(self):
        def handler(request):
            raise HTTPError(404, "nope", details={"hint": "x"})

        resp = error_middleware(handler)(Request("GET", "/"))
        assert resp.status == 404
        assert resp.json() == {"error": "nope", "details": {"hint": "x"}}

    def test_validation_error_rendered_as_400(self):
        def handler(request):
            raise DatasetValidationError(["bad row 1", "bad row 2"])

        resp = error_middleware(handler)(Request("GET", "/"))
        assert resp.status == 400
        assert resp.json()["details"] == ["bad row 1", "bad row 2"]

    def test_unexpected_error_is_500(self, caplog):
        def handler(request):
            raise RuntimeError("boom")

        with caplog.at_level(logging.ERROR, logger="repro.server"):
            resp = error_middleware(handler)(Request("GET", "/"))
        assert resp.status == 500
        assert "boom" in resp.json()["error"]


class TestBodyLimit:
    def test_under_limit_passes(self):
        handler = body_limit_middleware(10)(ok_handler)
        assert handler(Request("POST", "/", body=b"123")).status == 200

    def test_over_limit_rejected(self):
        handler = error_middleware(body_limit_middleware(10)(ok_handler))
        resp = handler(Request("POST", "/", body=b"x" * 11))
        assert resp.status == 413
        assert "chunked upload" in resp.json()["error"]

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            body_limit_middleware(0)


class TestLogging:
    def test_logs_request_line(self, caplog):
        handler = logging_middleware(ok_handler)
        with caplog.at_level(logging.INFO, logger="repro.server"):
            handler(Request("GET", "/datasets"))
        assert any("/datasets" in r.message and "200" in r.message for r in caplog.records)


class TestV1ErrorEnvelope:
    """Under /api/v1 every failure renders the uniform error document."""

    def test_http_error_uses_envelope(self):
        def handler(request):
            raise HTTPError(404, "nope", details={"hint": "x"}, code="unknown_thing")

        resp = error_middleware(handler)(Request("GET", "/api/v1/things/1"))
        assert resp.status == 404
        assert resp.json() == {
            "error": {"code": "unknown_thing", "message": "nope",
                      "detail": {"hint": "x"}}
        }

    def test_default_code_derived_from_status(self):
        def handler(request):
            raise HTTPError(409, "busy")

        resp = error_middleware(handler)(Request("GET", "/api/v1/x"))
        assert resp.json()["error"]["code"] == "conflict"

    def test_validation_error_envelope(self):
        def handler(request):
            raise DatasetValidationError(["bad row 1"])

        resp = error_middleware(handler)(Request("POST", "/api/v1/x"))
        assert resp.status == 400
        body = resp.json()["error"]
        assert body["code"] == "validation_failed"
        assert body["detail"] == ["bad row 1"]

    def test_unexpected_error_envelope(self, caplog):
        def handler(request):
            raise RuntimeError("boom")

        with caplog.at_level(logging.ERROR, logger="repro.server"):
            resp = error_middleware(handler)(Request("GET", "/api/v1/x"))
        assert resp.status == 500
        assert resp.json()["error"]["code"] == "internal_error"
        assert "boom" in resp.json()["error"]["message"]

    def test_malformed_json_body_is_400(self):
        def handler(request):
            return json_response(request.json())

        resp = error_middleware(handler)(
            Request("POST", "/api/v1/datasets/x/results", body=b"{nope")
        )
        assert resp.status == 400
        assert resp.json()["error"]["code"] == "bad_request"
        assert "malformed" in resp.json()["error"]["message"]

    def test_legacy_paths_keep_the_old_shape(self):
        def handler(request):
            raise HTTPError(404, "nope", details={"hint": "x"})

        resp = error_middleware(handler)(Request("GET", "/datasets/x"))
        assert resp.json() == {"error": "nope", "details": {"hint": "x"}}

    def test_error_headers_merged_into_response(self):
        def handler(request):
            raise HTTPError(405, "no", headers={"Allow": "GET, POST"})

        resp = error_middleware(handler)(Request("PUT", "/api/v1/x"))
        assert resp.status == 405
        assert resp.headers["Allow"] == "GET, POST"
