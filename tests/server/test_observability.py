"""The observability surface over the API: request ids, metrics, traces.

Covers the end-to-end telemetry contract from the outside in:

* every response — success or error envelope — carries ``X-Request-Id``
  (honored when the client sent one, minted otherwise);
* ``GET /api/v1/metrics`` serves a parseable Prometheus page whose
  families span the HTTP, jobs, WAL, and cache subsystems, and
  ``/api/v1/admin/stats`` folds the same registry in as a summary;
* slow-request / slow-shard warnings fire only when their env knobs are
  set (default off — benchmarks must not pay for them);
* ``GET /api/v1/jobs/{id}/trace`` serves the persisted span tree on a
  durable store, 409s on the in-memory registry, and stamps the request's
  id onto submitted jobs as their trace id.
"""

from __future__ import annotations

import logging
import time

import pytest

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_santander
from repro.jobs import TERMINAL_STATES
from repro.obs.metrics import CONTENT_TYPE
from repro.server.app import TestClient, create_app
from repro.store.database import Database

from tests.obs.test_metrics import parse_page

PARAMS = recommended_parameters("santander").to_document()
TIMEOUT = 60.0


@pytest.fixture
def dataset():
    return generate_santander(seed=2, neighbourhoods=4, steps=240)


@pytest.fixture
def client():
    app = create_app(job_workers=1)
    yield TestClient(app)
    app.close()


@pytest.fixture
def durable_client(tmp_path, dataset):
    app = create_app(
        database=Database(tmp_path / "store.json"),
        job_workers=1,
        worker_id="obs-test",
    )
    client = TestClient(app)
    assert client.upload_dataset(dataset, chunk_lines=1000).status == 201
    yield client
    app.close()


def poll_until_terminal(client, job_id: str, timeout: float = TIMEOUT) -> dict:
    deadline = time.monotonic() + timeout
    doc = None
    while time.monotonic() < deadline:
        doc = client.get(f"/api/v1/jobs/{job_id}").json()
        if doc["state"] in TERMINAL_STATES:
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} not terminal after {timeout}s: {doc}")


# -- X-Request-Id ---------------------------------------------------------------


class TestRequestId:
    def test_client_id_is_echoed(self, client):
        response = client.get("/api/v1/schema", headers={"X-Request-Id": "abc-123"})
        assert response.status == 200
        assert response.headers["X-Request-Id"] == "abc-123"

    def test_id_is_minted_when_absent(self, client):
        first = client.get("/api/v1/schema")
        second = client.get("/api/v1/schema")
        minted = first.headers["X-Request-Id"]
        assert minted and minted != second.headers["X-Request-Id"]

    def test_id_lands_on_error_envelopes(self, client):
        response = client.get(
            "/api/v1/jobs/no-such-job", headers={"X-Request-Id": "err-1"}
        )
        assert response.status == 404
        assert response.headers["X-Request-Id"] == "err-1"
        # The envelope shape is unchanged by the id machinery.
        assert set(response.json()["error"]) == {"code", "message", "detail"}

    def test_id_lands_on_unmatched_routes(self, client):
        response = client.get("/api/v1/definitely/not/a/route")
        assert response.status == 404
        assert response.headers["X-Request-Id"]


# -- /api/v1/metrics -------------------------------------------------------------


class TestMetricsEndpoint:
    def test_scrape_is_parseable_with_the_mandated_content_type(self, client):
        client.get("/api/v1/schema")  # ensure at least one observed request
        response = client.get("/api/v1/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"] == CONTENT_TYPE
        page = response.body.decode("utf-8")
        samples = parse_page(page)  # raises on any malformed line
        assert samples

    def test_families_cover_http_jobs_wal_and_cache(self, client):
        client.get("/api/v1/schema")
        page = client.get("/api/v1/metrics").body.decode("utf-8")
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_jobs_claims_total",
            "repro_wal_append_seconds",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
        ):
            assert f"# TYPE {family} " in page, f"{family} missing from scrape"

    def test_http_requests_are_labelled_by_route_template(self, client):
        client.get("/api/v1/jobs/no-such-job", headers={"X-Request-Id": "x"})
        page = client.get("/api/v1/metrics").body.decode("utf-8")
        # The label is the registered pattern, not the raw path: cardinality
        # stays bounded by the route table.
        assert 'route="/api/v1/jobs/{job_id}"' in page
        assert "no-such-job" not in page

    def test_counts_never_decrease_across_scrapes(self, client):
        def scrape():
            return parse_page(client.get("/api/v1/metrics").body.decode("utf-8"))

        first = scrape()
        client.get("/api/v1/schema")
        second = scrape()
        regressions = [
            key for key, value in first.items()
            if "_total" in key and second.get(key, value) < value
        ]
        assert regressions == []

    def test_admin_stats_folds_the_registry_summary_in(self, client):
        client.get("/api/v1/schema")
        response = client.get("/api/v1/admin/stats")
        assert response.status == 200
        metrics = response.json()["metrics"]
        assert metrics["repro_http_requests_total"] >= 1


# -- slow-operation warnings ------------------------------------------------------


class TestSlowWarnings:
    def test_slow_request_warning_is_off_by_default(self, client, caplog, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_REQUEST_MS", raising=False)
        with caplog.at_level(logging.WARNING, logger="repro.server"):
            client.get("/api/v1/schema")
        assert not [r for r in caplog.records if "slow request" in r.message]

    def test_slow_request_warning_fires_past_threshold(self, client, caplog, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_REQUEST_MS", "0")
        with caplog.at_level(logging.WARNING, logger="repro.server"):
            client.get("/api/v1/schema")
        (record,) = [r for r in caplog.records if "slow request" in r.message]
        assert "/api/v1/schema" in record.message

    def test_slow_shard_warning_fires_past_threshold(self, caplog, monkeypatch):
        from repro.jobs.executor import run_claimed_job
        from repro.jobs.store import JobStore

        store = JobStore()
        job, _ = store.open_job("d", {}, "key-1", trace_id="t1")
        claimed = store.mark_running(job.job_id)
        monkeypatch.setenv("REPRO_SLOW_SHARD_S", "0.000001")
        with caplog.at_level(logging.WARNING, logger="repro.jobs"):
            run_claimed_job(store, claimed, lambda control: "result-key")
        (record,) = [r for r in caplog.records if "slow" in r.message]
        assert job.job_id in record.message
        assert store.get(job.job_id).state == "succeeded"

    def test_slow_shard_warning_is_off_by_default(self, caplog, monkeypatch):
        from repro.jobs.executor import run_claimed_job
        from repro.jobs.store import JobStore

        monkeypatch.delenv("REPRO_SLOW_SHARD_S", raising=False)
        store = JobStore()
        job, _ = store.open_job("d", {}, "key-1")
        claimed = store.mark_running(job.job_id)
        with caplog.at_level(logging.WARNING, logger="repro.jobs"):
            run_claimed_job(store, claimed, lambda control: "result-key")
        assert not [r for r in caplog.records if "slow" in r.message]


# -- the trace endpoint -----------------------------------------------------------


class TestTraceEndpoint:
    def test_in_memory_registry_answers_409(self, client):
        response = client.get("/api/v1/jobs/job-0001-deadbeef/trace")
        assert response.status == 409
        assert response.json()["error"]["code"] == "not_durable"

    def test_unknown_job_answers_404(self, durable_client):
        response = durable_client.get("/api/v1/jobs/no-such-job/trace")
        assert response.status == 404
        assert response.json()["error"]["code"] == "unknown_job"

    def test_async_mine_produces_a_traced_span_tree(self, durable_client):
        submitted = durable_client.post(
            "/api/v1/datasets/santander/results",
            json_body={"parameters": PARAMS, "mode": "async"},
            headers={"X-Request-Id": "trace-me"},
        )
        assert submitted.status == 202, submitted.json()
        job_id = submitted.json()["job_id"]
        final = poll_until_terminal(durable_client, job_id)
        assert final["state"] == "succeeded", final
        # The request id became the job's trace id...
        assert final["trace_id"] == "trace-me"
        tree = durable_client.get(f"/api/v1/jobs/{job_id}/trace").json()
        assert tree["job_id"] == job_id
        assert tree["trace_id"] == "trace-me"
        # ...and the persisted span carries it too.
        (span,) = tree["spans"]
        assert span["trace_id"] == "trace-me"
        assert span["status"] == "ok"
        assert span["name"] == "mine"
        assert span["end"] >= span["start"]
