"""Async mining over the API: submit → poll → result parity, cancellation.

The contract under test is the ISSUE-3 acceptance criteria: while an async
mine runs, status polls and visualization requests are answered; progress
only ever grows, ending at 1.0; and the completed job's result payload is
byte-identical to what sync ``POST /mine`` returns for the same
(dataset, parameters) — because both are served from the same cache
document through the same memoized deserialization.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.miner import MiningResult, MiscelaMiner
from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_santander
from repro.jobs import TERMINAL_STATES
from repro.server.app import TestClient, create_app

PARAMS = recommended_parameters("santander").to_document()
TIMEOUT = 60.0


@pytest.fixture
def dataset():
    return generate_santander(seed=2, neighbourhoods=4, steps=240)


@pytest.fixture
def client(dataset):
    app = create_app()
    client = TestClient(app)
    response = client.upload_dataset(dataset, chunk_lines=1000)
    assert response.status == 201, response.json()
    yield client
    app.close()


def submit_async(client, params=PARAMS) -> str:
    response = client.post(
        "/mine",
        json_body={"dataset": "santander", "parameters": params, "mode": "async"},
    )
    assert response.status == 202, response.json()
    payload = response.json()
    assert payload["job_id"]
    return payload["job_id"]


def poll_until_terminal(client, job_id: str, timeout: float = TIMEOUT) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = client.get(f"/jobs/{job_id}").json()
        if doc["state"] in TERMINAL_STATES:
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still {doc['state']} after {timeout}s")


class SlowMine:
    """A monkeypatched ``MiscelaMiner.mine``: cooperative, step-by-step.

    Reports ``steps`` progress ticks through the control and pauses at a
    checkpoint between each, so tests can observe a mid-flight job and
    cancel it deterministically.
    """

    def __init__(self, steps: int = 50, delay: float = 0.05):
        self.steps = steps
        self.delay = delay
        self.started = threading.Event()

    def __call__(self, miner, dataset, control=None):
        self.started.set()
        for step in range(1, self.steps + 1):
            if control is not None:
                control.checkpoint()
                control.report(step, self.steps)
            time.sleep(self.delay)
        return MiningResult(
            dataset_name=dataset.name, parameters=miner.params, caps=[]
        )


class TestSubmitPollResult:
    def test_async_result_matches_sync_byte_for_byte(self, client):
        job_id = submit_async(client)
        final = poll_until_terminal(client, job_id)
        assert final["state"] == "succeeded", final.get("error")
        assert final["progress"] == 1.0
        assert "result" in final
        sync = client.post(
            "/mine", json_body={"dataset": "santander", "parameters": PARAMS}
        )
        assert sync.status == 200
        assert json.dumps(final["result"], sort_keys=True) == json.dumps(
            sync.json(), sort_keys=True
        )
        assert final["result"]["num_caps"] > 0

    def test_async_result_lands_in_the_shared_cache(self, client):
        job_id = submit_async(client)
        poll_until_terminal(client, job_id)
        # The cached-results listing and map-click lookup see the async CAPs
        # exactly as if they had been mined synchronously.
        listing = client.get("/caps/santander").json()
        assert len(listing["cached_results"]) == 1
        sensor = client.get(f"/jobs/{job_id}").json()["result"]["caps"][0]["sensors"][0]
        clicked = client.get(f"/caps/santander/sensors/{sensor}")
        assert clicked.status == 200
        assert clicked.json()["correlated"]

    def test_progress_is_monotone_and_completes(self, client, monkeypatch):
        slow = SlowMine(steps=12, delay=0.01)
        monkeypatch.setattr(MiscelaMiner, "mine", lambda s, d, control=None: slow(s, d, control))
        job_id = submit_async(client)
        seen: list[float] = []
        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            doc = client.get(f"/jobs/{job_id}").json()
            seen.append(doc["progress"])
            if doc["state"] in TERMINAL_STATES:
                break
            time.sleep(0.01)
        assert doc["state"] == "succeeded"
        assert seen == sorted(seen), f"progress regressed: {seen}"
        assert seen[-1] == 1.0
        assert len(set(seen)) > 2  # actually observed intermediate fractions

    def test_submit_returns_before_mining_finishes(self, client, monkeypatch):
        slow = SlowMine(steps=200, delay=0.05)
        monkeypatch.setattr(MiscelaMiner, "mine", lambda s, d, control=None: slow(s, d, control))
        started = time.perf_counter()
        job_id = submit_async(client)
        submit_latency = time.perf_counter() - started
        assert submit_latency < 2.0  # 202 comes back immediately, not after 10s
        doc = client.get(f"/jobs/{job_id}").json()
        assert doc["state"] in ("queued", "running")
        # Interactive endpoints answer while the mine is in flight.
        assert client.get("/viz/santander/map").status == 200
        assert client.get("/admin/stats").json()["jobs"]["running"] == 1
        assert client.post(f"/jobs/{job_id}/cancel").status == 200
        assert poll_until_terminal(client, job_id)["state"] == "cancelled"

    def test_sync_mode_unchanged(self, client):
        response = client.post(
            "/mine", json_body={"dataset": "santander", "parameters": PARAMS}
        )
        assert response.status == 200
        payload = response.json()
        assert payload["num_caps"] == len(payload["caps"]) > 0
        assert not payload["from_cache"]

    def test_bad_mode_rejected(self, client):
        response = client.post(
            "/mine",
            json_body={"dataset": "santander", "parameters": PARAMS, "mode": "nope"},
        )
        assert response.status == 400

    def test_unknown_dataset_rejected_at_submit(self, client):
        response = client.post(
            "/mine",
            json_body={"dataset": "ghost", "parameters": PARAMS, "mode": "async"},
        )
        assert response.status == 404


class TestDedup:
    def test_identical_inflight_submission_reuses_job(self, client, monkeypatch):
        slow = SlowMine(steps=200, delay=0.05)
        monkeypatch.setattr(MiscelaMiner, "mine", lambda s, d, control=None: slow(s, d, control))
        first = submit_async(client)
        response = client.post(
            "/mine",
            json_body={"dataset": "santander", "parameters": PARAMS, "mode": "async"},
        )
        assert response.status == 202
        assert response.json()["job_id"] == first
        assert response.json()["deduplicated"] is True
        # n_jobs is an execution knob, not an identity: it must dedup too.
        tweaked = dict(PARAMS, n_jobs=4)
        again = client.post(
            "/mine",
            json_body={"dataset": "santander", "parameters": tweaked, "mode": "async"},
        )
        assert again.json()["job_id"] == first
        # Different parameters are a different job.
        other = client.post(
            "/mine",
            json_body={
                "dataset": "santander",
                "parameters": dict(PARAMS, min_support=PARAMS["min_support"] + 1),
                "mode": "async",
            },
        )
        assert other.json()["job_id"] != first
        client.post(f"/jobs/{first}/cancel")
        client.post(f"/jobs/{other.json()['job_id']}/cancel")

    def test_resubmit_after_completion_is_instant_cache_hit(self, client):
        first = submit_async(client)
        poll_until_terminal(client, first)
        second = submit_async(client)
        assert second != first
        final = poll_until_terminal(client, second)
        assert final["state"] == "succeeded"
        assert final["result"]["from_cache"] is True


class TestCancellation:
    def test_cancel_mid_run(self, client, monkeypatch):
        slow = SlowMine(steps=400, delay=0.05)
        monkeypatch.setattr(MiscelaMiner, "mine", lambda s, d, control=None: slow(s, d, control))
        job_id = submit_async(client)
        assert slow.started.wait(TIMEOUT)
        response = client.post(f"/jobs/{job_id}/cancel")
        assert response.status == 200
        assert response.json()["cancel_requested"] is True
        final = poll_until_terminal(client, job_id)
        assert final["state"] == "cancelled"
        assert final["progress"] < 1.0
        assert final["error"] is None
        assert "result" not in final
        # A cancelled run stored nothing: sync mining still has to compute.
        assert client.get("/caps/santander").json()["cached_results"] == []

    def test_reupload_during_inflight_job_withdraws_the_result(
        self, client, dataset, monkeypatch
    ):
        """A job mining replaced data must not publish: the re-upload
        cancels it, and even a photo-finish result is withdrawn."""
        slow = SlowMine(steps=400, delay=0.05)
        monkeypatch.setattr(MiscelaMiner, "mine", lambda s, d, control=None: slow(s, d, control))
        job_id = submit_async(client)
        assert slow.started.wait(TIMEOUT)
        assert client.upload_dataset(dataset, chunk_lines=1000).status == 201
        final = poll_until_terminal(client, job_id)
        assert final["state"] == "cancelled"
        assert client.get("/caps/santander").json()["cached_results"] == []

    def test_cancel_unknown_job_404(self, client):
        assert client.post("/jobs/job-0099-missing/cancel").status == 404

    def test_cancel_finished_job_409(self, client):
        job_id = submit_async(client)
        poll_until_terminal(client, job_id)
        assert client.post(f"/jobs/{job_id}/cancel").status == 409


class TestJobListing:
    def test_listing_and_status_filter(self, client):
        job_id = submit_async(client)
        poll_until_terminal(client, job_id)
        everything = client.get("/jobs").json()["jobs"]
        assert [job["job_id"] for job in everything] == [job_id]
        assert "result" not in everything[0]  # listings stay light
        done = client.get("/jobs?status=succeeded").json()["jobs"]
        assert [job["job_id"] for job in done] == [job_id]
        assert client.get("/jobs?status=queued").json()["jobs"] == []
        assert client.get("/jobs?status=bogus").status == 400

    def test_unknown_job_404(self, client):
        assert client.get("/jobs/job-0042-nothing").status == 404

    def test_admin_stats_counters(self, client):
        stats = client.get("/admin/stats").json()["jobs"]
        assert stats["total"] == 0
        assert stats["executor_width"] == 2
        job_id = submit_async(client)
        poll_until_terminal(client, job_id)
        stats = client.get("/admin/stats").json()["jobs"]
        assert stats["succeeded"] == 1
        assert stats["total"] == 1


class TestThreadedServer:
    """Over real sockets: the ThreadingMixIn server answers during a mine."""

    def test_polls_served_while_async_mine_runs(self, dataset, monkeypatch):
        import urllib.request

        from repro.server.app import create_app
        from repro.server.http import make_threaded_server, wsgi_adapter

        app = create_app()
        client = TestClient(app)
        assert client.upload_dataset(dataset, chunk_lines=1000).status == 201
        slow = SlowMine(steps=400, delay=0.05)
        monkeypatch.setattr(MiscelaMiner, "mine", lambda s, d, control=None: slow(s, d, control))

        server = make_threaded_server("127.0.0.1", 0, wsgi_adapter(app))
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{port}"

        def fetch(method: str, path: str, body: dict | None = None):
            request = urllib.request.Request(f"{base}{path}", method=method)
            data = None
            if body is not None:
                data = json.dumps(body).encode()
                request.add_header("Content-Type", "application/json")
            with urllib.request.urlopen(request, data=data, timeout=10) as resp:
                return resp.status, json.loads(resp.read() or b"null")

        try:
            status, payload = fetch(
                "POST", "/mine",
                {"dataset": "santander", "parameters": PARAMS, "mode": "async"},
            )
            assert status == 202
            job_id = payload["job_id"]
            assert slow.started.wait(TIMEOUT)
            # While the mine runs, polls and admin calls are served promptly.
            for _ in range(3):
                t0 = time.perf_counter()
                status, doc = fetch("GET", f"/jobs/{job_id}")
                assert status == 200 and doc["state"] == "running"
                assert time.perf_counter() - t0 < 5.0
            status, stats = fetch("GET", "/admin/stats")
            assert stats["jobs"]["running"] == 1
            status, cancelled = fetch("POST", f"/jobs/{job_id}/cancel")
            assert status == 200
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline:
                _, doc = fetch("GET", f"/jobs/{job_id}")
                if doc["state"] in TERMINAL_STATES:
                    break
                time.sleep(0.05)
            assert doc["state"] == "cancelled"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            app.close()


class TestEvictedJobRedirect:
    """Terminal-job eviction must not strand issued job Location links:
    an evicted succeeded job answers 301 at its surviving result resource."""

    def evict_first_of_three(self, client):
        app_state = client.app.state
        app_state.jobs.store._terminal_capacity = 1
        job_ids, keys = [], []
        for support in (10, 5, 2):
            params = dict(PARAMS, min_support=support)
            job_id = submit_async(client, params)
            final = poll_until_terminal(client, job_id)
            assert final["state"] == "succeeded"
            job_ids.append(job_id)
            keys.append(final["result_key"])
        # The third submission's open_job pruned the first finished job.
        assert client.get(f"/api/v1/jobs/{job_ids[1]}").status in (200, 301)
        return job_ids, keys

    def test_evicted_job_redirects_to_result(self, client):
        job_ids, keys = self.evict_first_of_three(client)
        for path in (f"/jobs/{job_ids[0]}", f"/api/v1/jobs/{job_ids[0]}"):
            response = client.get(path)
            assert response.status == 301, (path, response.json())
            assert response.headers["Location"] == f"/api/v1/results/{keys[0]}"
            assert response.json()["result_key"] == keys[0]
        # The redirect target still serves the result metadata.
        target = client.get(f"/api/v1/results/{keys[0]}")
        assert target.status == 200
        assert target.json()["key"] == keys[0]

    def test_redirect_gone_once_result_deleted(self, client):
        job_ids, keys = self.evict_first_of_three(client)
        assert client.delete(f"/api/v1/results/{keys[0]}").status == 204
        assert client.get(f"/api/v1/jobs/{job_ids[0]}").status == 404

    def test_unknown_job_still_404s(self, client):
        assert client.get("/api/v1/jobs/job-9999-nope").status == 404
