"""Distributed (sharded) mining under ``kill -9``: the PR-7 crash matrix.

Two real ``repro serve`` subprocesses share one store snapshot; the mine is
submitted ``mode=distributed`` so a planner splits it into shard sub-jobs
that either process's polling worker can claim under its own lease.  The
matrix proves the headline robustness claims:

* a clean distributed run produces the byte-identical CAP page a serial
  mine produces, and the job resource exposes the shard tree;
* ``kill -9`` landing mid-shard costs *at most one shard* of recomputation
  — the survivor reclaims exactly the lost shard (execution audit log),
  everything already finished stays finished;
* the deterministic crash points ``after-shard-claim`` and
  ``before-merge-publish`` lose no completed shard work either;
* a poison shard that kills its worker ``max_attempts`` times dead-letters
  with a structured ``AttemptsExhausted`` error and fails the parent with
  a diagnosis naming the shard, instead of crash-looping forever.

Byte-identity everywhere: every succeeded path must serve the exact page
:func:`reference_caps_bytes` computes in-process with no sharding at all.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.data.datasets import generate, recommended_parameters

from tests.jobs.harness import (
    JOB_TIMEOUT,
    SRC_DIR,
    ServerProcess,
    caps_page_bytes,
    poll_job,
    read_exec_log,
    reference_caps_bytes,
    submit_distributed,
    upload_dataset,
    wait_for_exec_entries,
)

DATASET_NAME = "covid19"
FAULT_EXIT = 70  # os._exit code of a REPRO_JOBS_FAULT crash point


@pytest.fixture(scope="module")
def dataset():
    return generate(DATASET_NAME, seed=7)


@pytest.fixture(scope="module")
def params_doc():
    return recommended_parameters(DATASET_NAME).to_document()


@pytest.fixture(scope="module")
def reference_page(dataset, params_doc):
    return reference_caps_bytes(dataset, params_doc)


def shard_executions(log_path, parent_id):
    """Audit entries grouped per shard id of one distributed parent."""
    by_shard: dict[str, list[tuple[str, str, int]]] = {}
    for entry in read_exec_log(log_path):
        job_id = entry[0]
        if job_id.startswith(f"{parent_id}-s"):
            by_shard.setdefault(job_id, []).append(entry)
    return by_shard


def wait_for_any_shard_execution(log_path, parent_id, timeout=JOB_TIMEOUT):
    """Block until the audit log shows some shard of ``parent_id`` started."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        started = shard_executions(log_path, parent_id)
        if started:
            return started
        time.sleep(0.02)
    raise AssertionError(f"no shard of {parent_id} ever executed")


def test_distributed_run_matches_serial_and_exposes_shard_tree(
    tmp_path, dataset, params_doc, reference_page
):
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    with ServerProcess(
        store, worker_id="solo", exec_log=exec_log, lease_seconds=5.0,
        worker_poll=0.1,
    ) as server:
        upload_dataset(server, dataset)
        submitted = submit_distributed(server, DATASET_NAME, params_doc)
        job_id = submitted["job_id"]
        final = poll_job(server, job_id)
        assert final["state"] == "succeeded", final
        # The v1 job resource of a distributed parent carries the shard tree.
        shards = final["shards"]
        assert len(shards) >= 2
        assert [entry["shard_index"] for entry in shards] == list(
            range(len(shards))
        )
        assert all(entry["state"] == "succeeded" for entry in shards)
        assert final["merge"]["state"] == "succeeded"
        # Exactly-once: every shard and the merge executed once.
        by_shard = shard_executions(exec_log, job_id)
        assert set(by_shard) == {entry["job_id"] for entry in shards}
        assert all(len(runs) == 1 for runs in by_shard.values())
        merge_runs = [e for e in read_exec_log(exec_log)
                      if e[0] == final["merge"]["job_id"]]
        assert len(merge_runs) == 1
        # The merged page is the byte-identical serial page.
        key = final["result_key"]
        assert caps_page_bytes(server, key) == reference_page
        # Admin stats expose the per-kind breakdown.
        status, stats = server.get_json("/api/v1/admin/stats")
        assert status == 200
        assert stats["jobs"]["kinds"]["shard"] == len(shards)
        assert stats["jobs"]["dead_lettered"] == 0


def test_kill9_mid_shard_survivor_recomputes_only_lost_shard(
    tmp_path, dataset, params_doc, reference_page
):
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    with ServerProcess(
        store, worker_id="doomed", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1, shard_delay=8.0,
    ) as doomed:
        upload_dataset(doomed, dataset)
        submitted = submit_distributed(doomed, DATASET_NAME, params_doc)
        job_id = submitted["job_id"]
        # The shard delay pins the claimed shard mid-execution; kill only
        # once the audit log proves an execution *started* (the claim
        # itself becomes visible a hair earlier).
        started = wait_for_any_shard_execution(exec_log, job_id)
        doomed.kill()
    # With one driver thread and an 8s shard hold, the dead server was
    # executing exactly one shard when SIGKILL landed.
    assert sum(len(runs) for runs in started.values()) == 1
    (lost_shard,) = started

    with ServerProcess(
        store, worker_id="survivor", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1,
    ) as survivor:
        final = poll_job(survivor, job_id)
        assert final["state"] == "succeeded", final
        by_shard = shard_executions(exec_log, job_id)
        # Takeover recomputed exactly the lost shard — two audit entries on
        # distinct workers — and nothing else.
        assert [w for _, w, _ in by_shard.pop(lost_shard)] == [
            "doomed", "survivor"
        ]
        assert all(len(runs) == 1 for runs in by_shard.values())
        assert all(runs[0][1] == "survivor" for runs in by_shard.values())
        assert caps_page_bytes(survivor, final["result_key"]) == reference_page

    # The persisted span tree outlives both processes and records the
    # forensics: the dead worker's attempt is marked "interrupted" by the
    # reclaimer, the survivor's recompute closed "ok".
    from repro.jobs import DurableJobStore
    from repro.obs.trace import trace_tree
    from repro.store.database import Database

    registry = DurableJobStore(Database(store), worker_id="inspector")
    tree = trace_tree(registry, job_id)
    trace_id = tree["trace_id"]
    assert trace_id  # minted by the submitting request's X-Request-Id layer
    nodes = {node["job_id"]: node for node in tree["children"]}
    lost = nodes[lost_shard]
    assert [
        (span["attempt"], span["worker_id"], span["status"])
        for span in lost["spans"]
    ] == [(1, "doomed", "interrupted"), (2, "survivor", "ok")]
    assert lost["spans"][0]["end"] is not None  # reclaim stamped a close time
    # Every span of the family shares the submitting request's trace id.
    family = tree["spans"] + [
        span for node in tree["children"] for span in node["spans"]
    ]
    assert family and all(span["trace_id"] == trace_id for span in family)
    # Succeeded shards carry their measured wall-time — the calibration
    # ground truth for estimate_seed_cost — on the job document itself.
    shards = [node for node in nodes.values() if node["kind"] == "shard"]
    assert shards and all(
        node["elapsed_seconds"] is not None for node in shards
    )
    del registry

    # ``repro trace`` reconstructs the same timeline from the snapshot.
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(SRC_DIR)
    )
    rendered = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", job_id,
         "--store", str(store)],
        env=env, capture_output=True, text=True, timeout=60,
    )
    assert rendered.returncode == 0, rendered.stderr
    assert f"trace {trace_id}" in rendered.stdout
    lost_rows = [
        line for line in rendered.stdout.splitlines() if lost_shard in line
    ]
    assert any("interrupted" in line and "doomed" in line for line in lost_rows)
    assert any("ok" in line and "survivor" in line for line in lost_rows)
    assert "measured shard wall-times" in rendered.stdout


def test_crash_after_shard_claim_leaves_result_intact(
    tmp_path, dataset, params_doc, reference_page
):
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    with ServerProcess(
        store, worker_id="claimer", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1, fault="after-shard-claim",
    ) as claimer:
        upload_dataset(claimer, dataset)
        submitted = submit_distributed(claimer, DATASET_NAME, params_doc)
        job_id = submitted["job_id"]
        # The crash point fires inside the first shard claim, after the CAS
        # write hits the WAL but before the runner logs an execution.
        assert claimer.wait_exit(JOB_TIMEOUT) == FAULT_EXIT
    assert shard_executions(exec_log, job_id) == {}

    with ServerProcess(
        store, worker_id="survivor", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1,
    ) as survivor:
        final = poll_job(survivor, job_id)
        assert final["state"] == "succeeded", final
        by_shard = shard_executions(exec_log, job_id)
        # The orphaned claim never ran, so recovery costs zero recompute:
        # every shard executes exactly once, all on the survivor.
        assert all(len(runs) == 1 for runs in by_shard.values())
        assert all(runs[0][1] == "survivor" for runs in by_shard.values())
        assert caps_page_bytes(survivor, final["result_key"]) == reference_page


def test_crash_before_merge_publish_never_recomputes_shards(
    tmp_path, dataset, params_doc, reference_page
):
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    with ServerProcess(
        store, worker_id="merger", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1, fault="before-merge-publish",
    ) as merger:
        upload_dataset(merger, dataset)
        submitted = submit_distributed(merger, DATASET_NAME, params_doc)
        job_id = submitted["job_id"]
        # All shards complete, the merge is claimed and assembled, and the
        # process dies on the brink of publishing.
        assert merger.wait_exit(JOB_TIMEOUT) == FAULT_EXIT

    with ServerProcess(
        store, worker_id="survivor", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1,
    ) as survivor:
        final = poll_job(survivor, job_id)
        assert final["state"] == "succeeded", final
        # The merge re-ran (two audit entries), but no shard did — their
        # outputs were durable, which is the whole point of persisting them.
        by_shard = shard_executions(exec_log, job_id)
        assert by_shard and all(len(runs) == 1 for runs in by_shard.values())
        assert all(runs[0][1] == "merger" for runs in by_shard.values())
        merge_runs = wait_for_exec_entries(exec_log, f"{job_id}-merge", count=2)
        assert [w for _, w, _ in merge_runs] == ["merger", "survivor"]
        assert caps_page_bytes(survivor, final["result_key"]) == reference_page


def test_sigterm_releases_claimed_shard_for_immediate_takeover(
    tmp_path, dataset, params_doc, reference_page
):
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    # A generous lease: if takeover depended on lease expiry instead of the
    # graceful release, the second phase would stall visibly.
    with ServerProcess(
        store, worker_id="retiring", exec_log=exec_log, lease_seconds=60.0,
        worker_poll=0.1, shard_delay=30.0,
    ) as retiring:
        upload_dataset(retiring, dataset)
        submitted = submit_distributed(retiring, DATASET_NAME, params_doc)
        job_id = submitted["job_id"]
        started = wait_for_any_shard_execution(exec_log, job_id)
        (held_shard,) = started
        assert retiring.terminate() == 0
    # The graceful exit released the claim: the shard is queued again, not
    # running under a 60s lease nobody will renew.
    from repro.jobs import DurableJobStore
    from repro.store.database import Database

    registry = DurableJobStore(Database(store), worker_id="inspector")
    released = registry.get(held_shard)
    assert released.state == "queued"
    assert released.worker_id is None
    assert released.not_before is None  # immediate takeover, no backoff
    assert released.attempt == 1  # the spent attempt stays on the record
    del registry

    with ServerProcess(
        store, worker_id="successor", exec_log=exec_log, lease_seconds=60.0,
        worker_poll=0.1,
    ) as successor:
        final = poll_job(successor, job_id)
        assert final["state"] == "succeeded", final
        by_shard = shard_executions(exec_log, job_id)
        assert [w for _, w, _ in by_shard[held_shard]] == [
            "retiring", "successor"
        ]
        assert caps_page_bytes(successor, final["result_key"]) == reference_page


def test_poison_shard_dead_letters_and_fails_parent(tmp_path):
    # china6 planned at one worker is a single shard: every attempt lands
    # on the same poison unit, so max_attempts=2 is exhausted by exactly
    # two crashes.
    dataset = generate("china6", seed=3)
    params_doc = recommended_parameters("china6").to_document()
    store = tmp_path / "store.json"
    exec_log = tmp_path / "exec.log"
    with ServerProcess(
        store, worker_id="crash-1", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1, fault="mid-shard", max_attempts=2,
    ) as first:
        upload_dataset(first, dataset)
        submitted = submit_distributed(
            first, "china6", params_doc, plan_workers=1
        )
        job_id = submitted["job_id"]
        assert first.wait_exit(JOB_TIMEOUT) == FAULT_EXIT
    with ServerProcess(
        store, worker_id="crash-2", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1, fault="mid-shard", max_attempts=2,
    ) as second:
        # Recovery requeues the lapsed shard (attempt 1 of 2); the retry
        # crashes at the same point and exhausts the budget.
        assert second.wait_exit(JOB_TIMEOUT) == FAULT_EXIT

    with ServerProcess(
        store, worker_id="healthy", exec_log=exec_log, lease_seconds=1.0,
        worker_poll=0.1, max_attempts=2,
    ) as healthy:
        final = poll_job(healthy, job_id)
        assert final["state"] == "failed", final
        # The parent's diagnosis names the culprit shard and the structured
        # AttemptsExhausted cause.
        assert final["error"]["type"] == "AttemptsExhausted"
        assert f"{job_id}-s000" in final["error"]["message"]
        assert "failed after 2 attempt(s)" in final["error"]["message"]
        shard = final["shards"][0]
        assert shard["state"] == "failed"
        assert shard["error"]["type"] == "AttemptsExhausted"
        assert shard["attempt"] == 2
        # Both crash attempts are in the audit log — and no third ever ran.
        shard_runs = [e for e in read_exec_log(exec_log)
                      if e[0] == f"{job_id}-s000"]
        assert [w for _, w, _ in shard_runs] == ["crash-1", "crash-2"]
        # The poisoned inputs are quarantined and counted.
        status, stats = healthy.get_json("/api/v1/admin/stats")
        assert status == 200
        assert stats["jobs"]["dead_lettered"] == 1
