"""The self-describing schema endpoint and the route-parity gate."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.server.app import TestClient, create_app
from repro.server.schema import build_schema, check_parity, main, render_markdown

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def app():
    app = create_app(job_workers=1)
    yield app
    app.close()


@pytest.fixture(scope="module")
def schema(app):
    return build_schema(app.router)


class TestSchemaEndpoint:
    def test_served_schema_matches_generator(self, app, schema):
        served = TestClient(app).get("/api/v1/schema")
        assert served.status == 200
        assert served.json() == schema

    def test_every_registered_route_appears(self, app, schema):
        for method, pattern in app.router.routes():
            assert pattern in schema["paths"], pattern
            assert method.lower() in schema["paths"][pattern], (method, pattern)

    def test_operations_carry_parameters_and_responses(self, schema):
        caps = schema["paths"]["/api/v1/results/{key}/caps"]["get"]
        names = {p["name"] for p in caps["parameters"]}
        assert {"key", "offset", "limit", "sensor", "attribute"} <= names
        path_param = next(p for p in caps["parameters"] if p["name"] == "key")
        assert path_param["in"] == "path" and path_param["required"] is True
        assert "200" in caps["responses"] and "304" in caps["responses"]
        assert caps["deprecated"] is False

    def test_legacy_routes_marked_deprecated_with_successor(self, schema):
        mine = schema["paths"]["/mine"]["post"]
        assert mine["deprecated"] is True
        assert mine["x-successor"] == "/api/v1/datasets/{name}/results"

    def test_schema_is_json_stable(self, app):
        assert build_schema(app.router) == build_schema(app.router)


class TestMarkdownReference:
    def test_markdown_covers_every_route(self, app, schema):
        markdown = render_markdown(schema)
        assert check_parity(app.router, schema, markdown) == []

    def test_markdown_sections(self, schema):
        markdown = render_markdown(schema)
        assert "## API v1 (current)" in markdown
        assert "## Deprecated unversioned routes" in markdown
        assert "### `POST /api/v1/datasets/{name}/results`" in markdown
        assert markdown.index("API v1 (current)") < markdown.index(
            "Deprecated unversioned routes"
        )

    def test_parity_detects_missing_route(self, app, schema):
        markdown = render_markdown(schema)
        broken = markdown.replace("### `POST /mine`", "### `POST /mined`")
        problems = check_parity(app.router, schema, broken)
        assert problems == [
            "POST /mine: missing from API.md",
            "POST /mined: documented in API.md but not registered",
        ]

    def test_parity_detects_stale_documented_route(self, app, schema):
        markdown = render_markdown(schema) + "\n### `GET /removed/endpoint`\n"
        problems = check_parity(app.router, schema, markdown)
        assert problems == [
            "GET /removed/endpoint: documented in API.md but not registered"
        ]

    def test_parity_detects_schema_gap(self, app, schema):
        markdown = render_markdown(schema)
        pruned = {
            "paths": {k: v for k, v in schema["paths"].items() if k != "/mine"}
        }
        problems = check_parity(app.router, pruned, markdown)
        assert problems == ["POST /mine: missing from the schema output"]


class TestCommittedReference:
    """The repo's API.md is the generated one — CI enforces this too."""

    def test_api_md_matches_registered_routes(self, app, schema):
        api_md = REPO_ROOT / "API.md"
        assert api_md.exists(), "API.md missing; run python -m repro.server.schema --out API.md"
        assert check_parity(app.router, schema, api_md.read_text()) == []


class TestCli:
    def test_check_passes_on_generated_file(self, tmp_path, capsys):
        target = tmp_path / "API.md"
        assert main(["--out", str(target)]) == 0
        assert main(["--check", str(target)]) == 0
        assert "route parity OK" in capsys.readouterr().out

    def test_check_fails_on_drift(self, tmp_path, capsys):
        target = tmp_path / "API.md"
        assert main(["--out", str(target)]) == 0
        target.write_text(target.read_text().replace("### `POST /mine`", ""))
        assert main(["--check", str(target)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_check_missing_file(self, tmp_path):
        assert main(["--check", str(tmp_path / "absent.md")]) == 1

    def test_json_output(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert '"/api/v1/schema"' in out
