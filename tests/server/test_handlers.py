"""Integration tests for the API: the full Figure-2 flow over the TestClient."""

from __future__ import annotations

import pytest

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_santander
from repro.server.app import TestClient, create_app
from repro.store.database import Database


@pytest.fixture
def dataset():
    return generate_santander(seed=2, neighbourhoods=4, steps=240)


@pytest.fixture
def client(dataset):
    app = create_app()
    client = TestClient(app)
    response = client.upload_dataset(dataset, chunk_lines=1000)
    assert response.status == 201, response.json()
    return client


PARAMS = recommended_parameters("santander").to_document()


class TestUploadFlow:
    def test_upload_registers_dataset(self, client):
        assert client.get("/datasets").json() == {"datasets": ["santander"]}

    def test_describe(self, client, dataset):
        desc = client.get("/datasets/santander").json()
        assert desc["sensors"] == len(dataset)
        assert desc["records"] == dataset.num_records

    def test_chunk_without_begin_conflicts(self, client):
        resp = client.post("/datasets/ghost/upload/chunk", text_body="id,attribute,time,data\n")
        assert resp.status == 409

    def test_finish_without_begin_conflicts(self, client):
        assert client.post("/datasets/ghost/upload/finish").status == 409

    def test_begin_requires_fields(self, client):
        resp = client.post("/datasets/x/upload/begin", json_body={"location_csv": ""})
        assert resp.status == 400
        assert "attribute_csv" in str(resp.json())

    def test_invalid_chunk_rejected(self, client):
        begin = client.post(
            "/datasets/x/upload/begin",
            json_body={"location_csv": "id,attribute,lat,lon\ns,t,0,0\n", "attribute_csv": "t\n"},
        )
        assert begin.status == 201
        resp = client.post("/datasets/x/upload/chunk", text_body="garbage")
        assert resp.status == 400

    def test_delete_dataset(self, client):
        assert client.delete("/datasets/santander").status == 200
        assert client.get("/datasets/santander").status == 404
        assert client.delete("/datasets/santander").status == 404

    def test_reupload_invalidates_cache(self, client, dataset):
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        stats = client.get("/admin/stats").json()
        assert stats["cache"]["entries"] == 1
        client.upload_dataset(dataset, chunk_lines=1000)
        stats = client.get("/admin/stats").json()
        assert stats["cache"]["entries"] == 0


class TestMining:
    def test_mine_returns_caps(self, client):
        resp = client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        assert resp.status == 200
        payload = resp.json()
        assert payload["num_caps"] == len(payload["caps"]) > 0
        assert not payload["from_cache"]

    def test_second_mine_hits_cache(self, client):
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        second = client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        assert second.json()["from_cache"]

    def test_mine_unknown_dataset(self, client):
        resp = client.post("/mine", json_body={"dataset": "ghost", "parameters": PARAMS})
        assert resp.status == 404

    def test_mine_invalid_parameters(self, client):
        bad = dict(PARAMS, min_support=0)
        resp = client.post("/mine", json_body={"dataset": "santander", "parameters": bad})
        assert resp.status == 400

    def test_mine_missing_fields(self, client):
        assert client.post("/mine", json_body={"dataset": "santander"}).status == 400

    def test_cached_results_listing(self, client):
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        listing = client.get("/caps/santander").json()
        assert len(listing["cached_results"]) == 1
        entry = listing["cached_results"][0]
        assert entry["num_caps"] > 0
        assert entry["parameters"]["min_support"] == PARAMS["min_support"]


class TestInteraction:
    def test_correlated_sensors_endpoint(self, client, dataset):
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        # Pick a sensor that participates in some CAP.
        caps = client.post(
            "/mine", json_body={"dataset": "santander", "parameters": PARAMS}
        ).json()["caps"]
        sensor = caps[0]["sensors"][0]
        resp = client.get(f"/caps/santander/sensors/{sensor}")
        assert resp.status == 200
        correlated = resp.json()["correlated"]
        assert len(correlated) >= 1
        assert sensor not in correlated

    def test_correlated_requires_mining_first(self, client, dataset):
        resp = client.get(f"/caps/santander/sensors/{dataset.sensor_ids[0]}")
        assert resp.status == 409

    def test_correlated_unknown_sensor(self, client):
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        assert client.get("/caps/santander/sensors/ghost").status == 404


class TestVizEndpoints:
    def test_map(self, client):
        resp = client.get("/viz/santander/map")
        assert resp.status == 200
        assert b"<svg" in resp.body

    def test_map_with_highlight(self, client, dataset):
        sid = dataset.sensor_ids[0]
        resp = client.get(f"/viz/santander/map?highlight={sid}")
        assert resp.status == 200

    def test_timeseries(self, client, dataset):
        ids = ",".join(dataset.sensor_ids[:3])
        resp = client.get(f"/viz/santander/timeseries?sensors={ids}")
        assert resp.status == 200
        assert b"<svg" in resp.body

    def test_timeseries_requires_sensors(self, client):
        assert client.get("/viz/santander/timeseries").status == 400

    def test_timeseries_unknown_sensor(self, client):
        assert client.get("/viz/santander/timeseries?sensors=ghost").status == 404

    def test_heatmap_default_sensors(self, client):
        resp = client.get("/viz/santander/heatmap")
        assert resp.status == 200
        assert b"<svg" in resp.body

    def test_heatmap_explicit_sensors(self, client, dataset):
        ids = ",".join(dataset.sensor_ids[:3])
        resp = client.get(f"/viz/santander/heatmap?sensors={ids}")
        assert resp.status == 200

    def test_heatmap_unknown_sensor(self, client):
        assert client.get("/viz/santander/heatmap?sensors=ghost").status == 404

    def test_heatmap_uses_cached_parameters(self, client):
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        resp = client.get("/viz/santander/heatmap")
        assert resp.status == 200


class TestAdminAndMisc:
    def test_index_lists_routes(self, client):
        payload = client.get("/").json()
        assert payload["service"] == "miscela-v"
        assert any("/mine" in r for r in payload["routes"])

    def test_admin_stats_shape(self, client):
        stats = client.get("/admin/stats").json()
        assert "store" in stats and "cache" in stats

    def test_admin_results_by_dataset(self, client):
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        loose = dict(PARAMS, min_support=5)
        client.post("/mine", json_body={"dataset": "santander", "parameters": loose})
        payload = client.get("/admin/results-by-dataset").json()
        row = payload["results_by_dataset"]["santander"]
        assert row["settings"] == 2
        assert row["total_caps"] > 0

    def test_admin_results_empty(self, client):
        payload = client.get("/admin/results-by-dataset").json()
        assert payload["results_by_dataset"] == {}

    def test_unknown_route_404(self, client):
        assert client.get("/nope").status == 404

    def test_method_not_allowed(self, client):
        assert client.post("/datasets").status == 405


class TestPersistenceAcrossRestart:
    def test_dataset_survives_restart(self, tmp_path, dataset):
        path = tmp_path / "server.json"
        app = create_app(Database(path))
        client = TestClient(app)
        assert client.upload_dataset(dataset, chunk_lines=1000).status == 201
        client.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        app.state.database.save()

        app2 = create_app(Database.open(path))
        client2 = TestClient(app2)
        assert client2.get("/datasets").json() == {"datasets": ["santander"]}
        resp = client2.post("/mine", json_body={"dataset": "santander", "parameters": PARAMS})
        assert resp.json()["from_cache"]  # cached CAPs survived the restart
