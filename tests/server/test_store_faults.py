"""Store-level crash points and cross-process generation withdrawal.

The server-facing half of the WAL engine's contract:

* a ``kill -9`` landing *inside a WAL append* during a live request tears
  that record — and the next server to open the store truncates the torn
  tail and carries on serving everything acknowledged before it;
* a dataset re-upload on one server process is a generation *record*, so
  a peer process mining the old data observes the bump mid-mine and
  withdraws its now-stale result instead of publishing it.
"""

from __future__ import annotations

import time

import pytest

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_covid19
from repro.store import wal

from tests.jobs.harness import (
    ServerProcess,
    poll_job,
    submit_async,
    upload_dataset,
    wait_for_state,
)

DATASET_NAME = "covid19"


@pytest.fixture(scope="module")
def dataset():
    return generate_covid19(seed=7)


@pytest.fixture(scope="module")
def params_doc():
    return recommended_parameters(DATASET_NAME).to_document()


def test_mid_append_during_submit_then_clean_restart(
    tmp_path, dataset, params_doc
):
    store = tmp_path / "store.json"
    # Prime the store: index-definition records and the dataset are on
    # disk, so the *next* append to the jobs log is the submit's insert.
    with ServerProcess(store, worker_id="prime") as primer:
        upload_dataset(primer, dataset)

    with ServerProcess(
        store, worker_id="doomed", store_fault="mid-append@jobs:1"
    ) as doomed:
        assert submit_async(doomed, DATASET_NAME, params_doc) is None
        # The append died halfway; so did the server.
        assert doomed.wait_exit() == wal.FAULT_EXIT_CODE

    jobs_log = tmp_path / "store.json.wal" / "jobs.log"
    assert wal.verify_log(jobs_log)["torn"]  # half a record is on disk

    # A clean restart recovers: torn tail truncated, nothing acknowledged
    # was lost, and the store is fully serviceable.
    with ServerProcess(store, worker_id="recovered") as recovered:
        status, names = recovered.get_json("/api/v1/datasets")
        assert status == 200
        assert DATASET_NAME in [d["name"] for d in names["datasets"]]
        status, listing = recovered.get_json("/api/v1/jobs")
        assert status == 200
        assert listing["jobs"] == []  # the torn submit never happened
        submitted = submit_async(recovered, DATASET_NAME, params_doc)
        final = poll_job(recovered, submitted["job_id"])
        assert final["state"] == "succeeded"
    assert not wal.verify_log(jobs_log)["torn"]


def test_reupload_on_peer_withdraws_result_mid_mine(
    tmp_path, dataset, params_doc
):
    """Generation bumps are WAL records: server A's re-upload cancels the
    job server B is mining, across process boundaries."""
    store = tmp_path / "store.json"
    with ServerProcess(
        store, worker_id="alpha", lease_seconds=5.0, worker_poll=0.1,
    ) as alpha:
        upload_dataset(alpha, dataset)
        with ServerProcess(
            store, worker_id="beta", lease_seconds=5.0, worker_poll=0.1,
            mine_delay=10.0,
        ) as beta:
            submitted = submit_async(beta, DATASET_NAME, params_doc)
            job_id = submitted["job_id"]
            running = wait_for_state(beta, job_id, "running")
            assert running["worker_id"] == "beta"

            # Re-upload on the *other* server: bumps the generation record.
            upload_dataset(alpha, dataset)

            final = poll_job(beta, job_id)
            assert final["state"] == "cancelled"
            assert not final.get("result_key")

            # The new generation mines clean on either server.
            fresh = submit_async(alpha, DATASET_NAME, params_doc)
            assert fresh["job_id"] != job_id
            done = poll_job(alpha, fresh["job_id"])
            assert done["state"] == "succeeded"


def test_two_processes_see_one_generation_sequence(tmp_path, dataset):
    """The generation counter lives in the store, not per-process memory:
    bumps from both servers accumulate into one shared sequence."""
    store = tmp_path / "store.json"
    with ServerProcess(store, worker_id="alpha") as alpha:
        with ServerProcess(store, worker_id="beta") as beta:
            upload_dataset(alpha, dataset)   # generation 1
            upload_dataset(beta, dataset)    # generation 2
            upload_dataset(alpha, dataset)   # generation 3
            time.sleep(0.2)
            for server in (alpha, beta):
                status, stats = server.get_json("/api/v1/admin/stats")
                assert status == 200
                assert stats["store"]["collections"]["generations"] == 1

    # Ground truth, read straight off the WAL after both servers exit.
    from repro.store.database import Database

    document = Database(store)["generations"].find_one({"name": DATASET_NAME})
    assert document["generation"] == 3
