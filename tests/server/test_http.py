"""Unit tests for the HTTP primitives and WSGI adapter."""

from __future__ import annotations

import io
import json

import pytest

from repro.server.http import (
    HTTPError,
    Request,
    Response,
    html_response,
    json_response,
    wsgi_adapter,
)


class TestRequest:
    def test_json_parsing(self):
        req = Request("POST", "/x", body=json.dumps({"a": 1}).encode())
        assert req.json() == {"a": 1}

    def test_json_empty_body(self):
        with pytest.raises(HTTPError) as exc:
            Request("POST", "/x").json()
        assert exc.value.status == 400

    def test_json_malformed(self):
        with pytest.raises(HTTPError, match="malformed"):
            Request("POST", "/x", body=b"{nope").json()

    def test_text(self):
        assert Request("POST", "/x", body="héllo".encode()).text() == "héllo"

    def test_text_bad_utf8(self):
        with pytest.raises(HTTPError, match="UTF-8"):
            Request("POST", "/x", body=b"\xff\xfe").text()

    def test_param(self):
        req = Request("GET", "/x", query={"a": ["1", "2"], "b": ["z"]})
        assert req.param("a") == "1"
        assert req.param("missing") is None
        assert req.param("missing", "default") == "default"


class TestResponse:
    def test_status_line(self):
        assert Response(status=404).status_line == "404 Not Found"
        assert Response(status=299).status_line == "299 Unknown"

    def test_json_response(self):
        resp = json_response({"x": 1}, status=201)
        assert resp.status == 201
        assert resp.json() == {"x": 1}
        assert "application/json" in resp.headers["Content-Type"]

    def test_html_response(self):
        resp = html_response("<h1>hi</h1>")
        assert "text/html" in resp.headers["Content-Type"]
        assert resp.body == b"<h1>hi</h1>"


class TestWsgiAdapter:
    def _call(self, handler, method="GET", path="/", qs="", body=b"", content_type=None):
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": qs,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
            "HTTP_X_CUSTOM": "abc",
        }
        if content_type:
            environ["CONTENT_TYPE"] = content_type
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        chunks = wsgi_adapter(handler)(environ, start_response)
        return captured, b"".join(chunks)

    def test_round_trip(self):
        def handler(request: Request) -> Response:
            assert request.method == "GET"
            assert request.path == "/hello"
            assert request.param("q") == "1"
            assert request.headers["x-custom"] == "abc"
            return json_response({"ok": True})

        captured, body = self._call(handler, path="/hello", qs="q=1")
        assert captured["status"].startswith("200")
        assert json.loads(body) == {"ok": True}

    def test_body_forwarded(self):
        def handler(request: Request) -> Response:
            return json_response(request.json())

        captured, body = self._call(
            handler, method="POST", body=b'{"n": 5}', content_type="application/json"
        )
        assert json.loads(body) == {"n": 5}

    def test_bad_content_length_treated_as_zero(self):
        def handler(request: Request) -> Response:
            return json_response({"len": len(request.body)})

        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": "/",
            "QUERY_STRING": "",
            "CONTENT_LENGTH": "not-a-number",
            "wsgi.input": io.BytesIO(b""),
        }
        out = {}
        chunks = wsgi_adapter(handler)(environ, lambda s, h: out.update(s=s))
        assert json.loads(b"".join(chunks)) == {"len": 0}
