"""Span store semantics: CAS closing, reclaim sweeps, read paths.

The crash-consistency story hangs on one rule: a span is closed by a
compare-and-set on ``status == "running"``, so a late finisher (a worker
whose lease lapsed mid-run) can never overwrite the ``interrupted`` or
``released`` verdict a reclaimer already recorded.
"""

from __future__ import annotations

import pytest

from repro.obs.spans import SpanStore, public_view, span_id
from repro.store.database import Database


@pytest.fixture()
def spans():
    return SpanStore(Database())


def test_span_id_encodes_job_attempt_and_worker():
    assert span_id("job-1", 2, "w") == "job-1#a2@w"


def test_begin_opens_a_running_span_with_full_schema(spans):
    sid = spans.begin(
        job_id="job-1", attempt=1, worker_id="w", name="mine", kind="mine",
        trace_id="t1",
    )
    (document,) = spans.for_job("job-1")
    assert document["span_id"] == sid
    assert document["status"] == "running"
    assert document["end"] is None
    assert document["error"] is None
    assert document["trace_id"] == "t1"
    # Every schema field is present even when unset — readers never .get().
    for field in ("parent_job_id", "shard_index", "start", "worker_id", "attempt"):
        assert field in document


def test_finish_is_cas_on_running(spans):
    sid = spans.begin(
        job_id="job-1", attempt=1, worker_id="w", name="mine", kind="mine"
    )
    assert spans.finish(sid, "ok") is True
    # The late finisher loses: the first verdict stands.
    assert spans.finish(sid, "error", error="too late") is False
    (document,) = spans.for_job("job-1")
    assert document["status"] == "ok"
    assert document["error"] is None
    assert document["end"] is not None


def test_finish_rejects_unknown_status(spans):
    sid = spans.begin(
        job_id="job-1", attempt=1, worker_id="w", name="mine", kind="mine"
    )
    with pytest.raises(ValueError):
        spans.finish(sid, "exploded")


def test_close_open_spans_marks_only_open_ones(spans):
    done = spans.begin(
        job_id="job-1", attempt=1, worker_id="w1", name="shard", kind="shard"
    )
    spans.finish(done, "ok")
    spans.begin(
        job_id="job-1", attempt=2, worker_id="w2", name="shard", kind="shard"
    )
    spans.begin(
        job_id="other", attempt=1, worker_id="w2", name="shard", kind="shard"
    )
    closed = spans.close_open_spans("job-1", "interrupted", error="lease lapsed")
    assert closed == 1
    by_attempt = {doc["attempt"]: doc for doc in spans.for_job("job-1")}
    assert by_attempt[1]["status"] == "ok"
    assert by_attempt[2]["status"] == "interrupted"
    assert by_attempt[2]["error"] == "lease lapsed"
    # The unrelated job's span stays open.
    (other,) = spans.for_job("other")
    assert other["status"] == "running"


def test_for_job_orders_by_attempt(spans):
    spans.begin(
        job_id="job-1", attempt=2, worker_id="w2", name="shard", kind="shard",
        start=200.0,
    )
    spans.begin(
        job_id="job-1", attempt=1, worker_id="w1", name="shard", kind="shard",
        start=100.0,
    )
    assert [doc["attempt"] for doc in spans.for_job("job-1")] == [1, 2]


def test_for_trace_collects_across_jobs(spans):
    spans.begin(
        job_id="parent", attempt=1, worker_id="w", name="planner", kind="mine",
        trace_id="t1", start=1.0,
    )
    spans.begin(
        job_id="parent-s000", attempt=1, worker_id="w", name="shard",
        kind="shard", trace_id="t1", parent_job_id="parent", start=2.0,
    )
    spans.begin(
        job_id="unrelated", attempt=1, worker_id="w", name="mine", kind="mine",
        trace_id="t2", start=0.5,
    )
    trace = spans.for_trace("t1")
    assert [doc["job_id"] for doc in trace] == ["parent", "parent-s000"]


def test_public_view_strips_store_bookkeeping(spans):
    spans.begin(
        job_id="job-1", attempt=1, worker_id="w", name="mine", kind="mine"
    )
    (document,) = spans.for_job("job-1")
    view = public_view(document)
    assert "_id" not in view
    assert view["span_id"] == document["span_id"]
