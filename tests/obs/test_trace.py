"""Trace reassembly: the JSON tree shape and the ASCII waterfall.

``trace_tree`` only needs ``get``/``children`` and a ``spans`` store, so
these tests drive it with a minimal registry double over a *real*
:class:`SpanStore` — the full durable integration is exercised by the
fault harness (``tests/server/test_distributed_jobs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import pytest

from repro.obs.spans import SpanStore
from repro.obs.trace import render_waterfall, trace_tree
from repro.store.database import Database


@dataclass
class FakeJob:
    job_id: str
    kind: str = "mine"
    shard_index: int | None = None
    state: str = "succeeded"
    attempt: int = 1
    worker_id: str | None = "w"
    trace_id: str | None = "t1"
    elapsed_seconds: float | None = None
    timings: dict[str, Any] | None = None
    distributed: bool = False


@dataclass
class FakeRegistry:
    spans: SpanStore
    jobs: dict[str, FakeJob] = field(default_factory=dict)
    child_map: dict[str, list[FakeJob]] = field(default_factory=dict)

    def get(self, job_id: str) -> FakeJob | None:
        return self.jobs.get(job_id)

    def children(self, parent_id: str) -> list[FakeJob]:
        return self.child_map.get(parent_id, [])


@pytest.fixture()
def registry():
    return FakeRegistry(spans=SpanStore(Database()))


def test_unknown_job_raises_key_error(registry):
    with pytest.raises(KeyError):
        trace_tree(registry, "nope")


def test_plain_job_tree_has_no_children(registry):
    registry.jobs["job-1"] = FakeJob("job-1")
    sid = registry.spans.begin(
        job_id="job-1", attempt=1, worker_id="w", name="mine", kind="mine",
        trace_id="t1", start=10.0,
    )
    registry.spans.finish(sid, "ok", end=11.0)
    tree = trace_tree(registry, "job-1")
    assert tree["job_id"] == "job-1"
    assert tree["children"] == []
    (span,) = tree["spans"]
    assert span["status"] == "ok"
    assert "_id" not in span


def test_distributed_tree_orders_shards_then_merge(registry):
    registry.jobs["p"] = FakeJob("p", distributed=True)
    shard1 = FakeJob("p-s001", kind="shard", shard_index=1, elapsed_seconds=0.2)
    shard0 = FakeJob(
        "p-s000", kind="shard", shard_index=0, elapsed_seconds=0.1,
        timings={"phases": {"search": {"seconds": 0.08, "count": 1}}, "units": []},
    )
    merge = FakeJob("p-merge", kind="merge")
    registry.child_map["p"] = [merge, shard1, shard0]
    tree = trace_tree(registry, "p")
    assert [node["job_id"] for node in tree["children"]] == [
        "p-s000", "p-s001", "p-merge"
    ]
    assert tree["children"][0]["elapsed_seconds"] == 0.1
    assert tree["children"][0]["timings"]["phases"]["search"]["count"] == 1


def _crashed_shard_tree(registry):
    """A parent whose shard 0 was interrupted and recomputed elsewhere."""
    registry.jobs["p"] = FakeJob("p", distributed=True)
    shard = FakeJob(
        "p-s000", kind="shard", shard_index=0, attempt=2,
        worker_id="survivor", elapsed_seconds=0.05,
    )
    registry.child_map["p"] = [shard]
    planner = registry.spans.begin(
        job_id="p", attempt=1, worker_id="doomed", name="planner",
        kind="mine", trace_id="t1", start=0.0,
    )
    registry.spans.finish(planner, "ok", end=1.0)
    registry.spans.begin(
        job_id="p-s000", attempt=1, worker_id="doomed", name="shard",
        kind="shard", trace_id="t1", parent_job_id="p", start=1.0,
    )
    registry.spans.close_open_spans("p-s000", "interrupted", error="lease lapsed")
    retry = registry.spans.begin(
        job_id="p-s000", attempt=2, worker_id="survivor", name="shard",
        kind="shard", trace_id="t1", parent_job_id="p", start=3.0,
    )
    registry.spans.finish(retry, "ok", end=4.0)
    return trace_tree(registry, "p")


def test_waterfall_shows_one_row_per_attempt(registry):
    rendered = render_waterfall(_crashed_shard_tree(registry))
    lines = rendered.splitlines()
    assert lines[0].startswith("trace t1 · job p (mine)")
    bar_lines = [line for line in lines if "|" in line]
    # planner + interrupted attempt + recompute attempt = three bars.
    assert len(bar_lines) == 3
    interrupted = next(line for line in bar_lines if "interrupted" in line)
    assert "a1" in interrupted and "doomed" in interrupted and "x" in interrupted
    recompute = next(line for line in bar_lines if "survivor" in line)
    assert "a2" in recompute and "ok" in recompute
    assert any("error: lease lapsed" in line for line in lines)
    # Measured wall-times section and the glyph legend close the render.
    assert any("measured shard wall-times" in line for line in lines)
    assert lines[-1].startswith("legend:")


def test_waterfall_marks_open_spans_as_running(registry):
    registry.jobs["job-1"] = FakeJob("job-1", state="running")
    registry.spans.begin(
        job_id="job-1", attempt=1, worker_id="w", name="mine", kind="mine",
        start=5.0,
    )
    rendered = render_waterfall(trace_tree(registry, "job-1"))
    row = next(line for line in rendered.splitlines() if "|" in line)
    assert "running" in row
    assert "open" in row  # no end time yet
    assert "?" in row


def test_waterfall_without_spans_says_so(registry):
    registry.jobs["job-1"] = FakeJob("job-1")
    rendered = render_waterfall(trace_tree(registry, "job-1"))
    assert "(no spans persisted for this job)" in rendered
