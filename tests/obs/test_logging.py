"""Structured logging: context propagation and the two formatters."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.logging import (
    JSONLogFormatter,
    TextLogFormatter,
    configure_logging,
    current_context,
    log_context,
)


def make_record(message: str = "hello") -> logging.LogRecord:
    return logging.LogRecord(
        name="repro.test", level=logging.INFO, pathname=__file__, lineno=1,
        msg=message, args=(), exc_info=None,
    )


def test_log_context_nests_and_restores():
    assert current_context() == {}
    with log_context(trace_id="t1"):
        assert current_context() == {"trace_id": "t1"}
        with log_context(job_id="j1", worker="w"):
            assert current_context() == {
                "trace_id": "t1", "job_id": "j1", "worker": "w"
            }
        assert current_context() == {"trace_id": "t1"}
    assert current_context() == {}


def test_json_formatter_emits_one_object_with_context():
    formatter = JSONLogFormatter()
    with log_context(trace_id="t1", job_id="j1"):
        line = formatter.format(make_record("shard done"))
    payload = json.loads(line)
    assert payload["message"] == "shard done"
    assert payload["level"] == "INFO"
    assert payload["logger"] == "repro.test"
    assert payload["trace_id"] == "t1"
    assert payload["job_id"] == "j1"
    assert "ts" in payload and "time" in payload


def test_json_formatter_includes_exceptions():
    formatter = JSONLogFormatter()
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        record = logging.LogRecord(
            name="repro.test", level=logging.ERROR, pathname=__file__,
            lineno=1, msg="failed", args=(), exc_info=True,
        )
        import sys

        record.exc_info = sys.exc_info()
    payload = json.loads(formatter.format(record))
    assert "RuntimeError: boom" in payload["exception"]


def test_text_formatter_appends_context_tags():
    formatter = TextLogFormatter()
    with log_context(trace_id="t1"):
        line = formatter.format(make_record())
    assert line.endswith("[trace_id=t1]")
    bare = formatter.format(make_record())
    assert "[" not in bare.split("hello")[-1]


def test_configure_logging_is_idempotent():
    root = logging.getLogger()
    before = list(root.handlers)
    try:
        configure_logging(level="debug", log_format="json")
        configure_logging(level="info", log_format="text")
        ours = [h for h in root.handlers if h.get_name() == "repro-obs"]
        assert len(ours) == 1
        assert isinstance(ours[0].formatter, TextLogFormatter)
        assert root.level == logging.INFO
    finally:
        for handler in list(root.handlers):
            if handler.get_name() == "repro-obs":
                root.removeHandler(handler)
        root.handlers = before


def test_configure_logging_rejects_unknown_settings():
    with pytest.raises(ValueError):
        configure_logging(level="chatty")
    with pytest.raises(ValueError):
        configure_logging(log_format="xml")
