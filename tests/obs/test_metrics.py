"""Prometheus text exposition: format invariants of the metrics registry.

A scraper is unforgiving: one malformed line poisons the whole page.  These
tests pin down the exposition contract — content type, HELP/TYPE headers,
label escaping, cumulative bucket monotonicity, the ``+Inf``/``_sum``/
``_count`` triple — and the semantic invariants (counters never decrease,
re-registration is idempotent, type conflicts are errors).
"""

from __future__ import annotations

import re

import pytest

from repro.obs.metrics import (
    CONTENT_TYPE,
    DEFAULT_BUCKETS,
    MetricsRegistry,
    escape_label_value,
    format_value,
    get_registry,
)

SAMPLE_LINE = re.compile(
    # Label values may themselves contain ``{``/``}`` (route templates like
    # ``/api/v1/jobs/{job_id}``), so the label block matches greedily to the
    # last ``}`` — the value after it never contains one.
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{(?P<labels>.*)\})? (?P<value>\S+)$"
)


def parse_page(page: str) -> dict[str, float]:
    """Sample lines of a scrape page as ``{name{labels}: value}``."""
    samples: dict[str, float] = {}
    for line in page.splitlines():
        if not line or line.startswith("#"):
            continue
        match = SAMPLE_LINE.match(line)
        assert match is not None, f"malformed sample line: {line!r}"
        key = match.group("name") + ("{" + (match.group("labels") or "") + "}")
        value = match.group("value")
        samples[key] = float("inf") if value == "+Inf" else float(value)
    return samples


def test_content_type_is_text_format_004():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_counter_is_monotone_and_rejects_negative_increments():
    registry = MetricsRegistry()
    counter = registry.counter("t_events_total", "events", ("kind",))
    counter.inc("a")
    counter.inc("a", amount=2.5)
    assert counter.value("a") == 3.5
    with pytest.raises(ValueError):
        counter.inc("a", amount=-1)
    assert counter.value("a") == 3.5


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("t_depth", "queue depth")
    gauge.inc()
    gauge.inc(amount=4)
    gauge.dec(amount=2)
    assert gauge.value() == 3
    gauge.set(0.5)
    assert gauge.value() == 0.5


def test_metric_names_are_validated():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("9starts_with_digit", "bad")
    with pytest.raises(ValueError):
        registry.counter("has-dash", "bad")
    with pytest.raises(ValueError):
        registry.counter("ok_name", "bad label", ("label-with-dash",))


def test_reregistration_returns_the_same_family():
    registry = MetricsRegistry()
    first = registry.counter("t_total", "help")
    second = registry.counter("t_total", "help")
    assert first is second
    with pytest.raises(ValueError):
        registry.gauge("t_total", "same name, different type")


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    counter = registry.counter("t_weird_total", "weird labels", ("path",))
    counter.inc('a\\b"c\nd')
    page = registry.render()
    assert 't_weird_total{path="a\\\\b\\"c\\nd"} 1' in page
    assert escape_label_value('"') == '\\"'
    assert escape_label_value("\\") == "\\\\"
    assert escape_label_value("\n") == "\\n"


def test_every_family_has_help_and_type_headers():
    registry = MetricsRegistry()
    registry.counter("t_a_total", "a")
    registry.gauge("t_b", "b")
    registry.histogram("t_c_seconds", "c")
    page = registry.render()
    for name, kind in (
        ("t_a_total", "counter"),
        ("t_b", "gauge"),
        ("t_c_seconds", "histogram"),
    ):
        assert f"# HELP {name} " in page
        assert f"# TYPE {name} {kind}" in page


def test_histogram_buckets_are_cumulative_and_end_at_inf():
    registry = MetricsRegistry()
    hist = registry.histogram(
        "t_latency_seconds", "latency", buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    samples = parse_page(registry.render())
    buckets = [
        samples['t_latency_seconds_bucket{le="0.01"}'],
        samples['t_latency_seconds_bucket{le="0.1"}'],
        samples['t_latency_seconds_bucket{le="1"}'],
        samples['t_latency_seconds_bucket{le="+Inf"}'],
    ]
    assert buckets == [2, 3, 4, 5]
    # Cumulative: non-decreasing left to right.
    assert all(a <= b for a, b in zip(buckets, buckets[1:]))
    # The +Inf bucket equals _count; _sum is the plain total.
    assert buckets[-1] == samples["t_latency_seconds_count{}"]
    assert samples["t_latency_seconds_sum{}"] == pytest.approx(5.56)


def test_histogram_rejects_degenerate_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("t_empty", "no buckets", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("t_dupes", "duplicate bounds", buckets=(1.0, 1.0))


def test_default_buckets_are_strictly_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


def test_counters_never_decrease_across_scrapes():
    registry = MetricsRegistry()
    counter = registry.counter("t_scrapes_total", "scrapes", ("kind",))
    hist = registry.histogram("t_obs_seconds", "observed", buckets=(1.0,))
    previous: dict[str, float] = {}
    for round_ in range(3):
        counter.inc("a")
        if round_ % 2:
            counter.inc("b", amount=3)
            hist.observe(0.5)
        current = parse_page(registry.render())
        for key, value in previous.items():
            assert current[key] >= value, f"{key} went backwards"
        previous = current


def test_format_value_renders_integers_without_decimal_point():
    assert format_value(3.0) == "3"
    assert format_value(0.5) == "0.5"
    assert format_value(float("inf")) == "+Inf"


def test_summary_aggregates_across_label_children():
    registry = MetricsRegistry()
    counter = registry.counter("t_sum_total", "sum", ("k",))
    counter.inc("a", amount=2)
    counter.inc("b", amount=3)
    hist = registry.histogram("t_sum_seconds", "hist")
    hist.observe(0.1)
    hist.observe(0.2)
    summary = registry.summary()
    assert summary["t_sum_total"] == 5
    assert summary["t_sum_seconds"] == 2  # histograms report observation count


def test_default_registry_is_a_process_singleton():
    assert get_registry() is get_registry()


def test_unlabelled_families_always_expose_one_series():
    registry = MetricsRegistry()
    registry.counter("t_untouched_total", "never incremented")
    samples = parse_page(registry.render())
    assert samples["t_untouched_total{}"] == 0
