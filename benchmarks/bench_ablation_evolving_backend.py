"""Ablation — packed-bitmap vs. sorted-array evolving-set backend (step 4).

The CAP search spends its inner loop intersecting evolving sets; the
``"bitset"`` backend replaces each ``np.isin`` over sorted int64 arrays
with a word-wise ``AND`` + popcount over packed ``np.uint64`` bitmaps
(see :mod:`repro.core.bitset` and the experiment index in DESIGN.md).

Identical output is asserted (the bitmap is an optimisation, not an
approximation), the bitset backend must win strictly on both the Santander
and China6 mining configurations, and the measured speedups are recorded in
``BENCH_bitset_backend.json`` at the repository root so the perf trajectory
is tracked by CI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.evolving import extract_all_evolving
from repro.core.search import search_all
from repro.core.spatial import build_proximity_graph
from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_china6, generate_santander

from .conftest import machine_info, print_table

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_bitset_backend.json"

#: Larger-than-default configurations so the timed region dominates noise:
#: two weeks of half-hourly Santander data, three weeks of hourly China6.
CONFIGS = {
    "santander": lambda: (generate_santander(seed=11, steps=672),
                          recommended_parameters("santander")),
    "china6": lambda: (generate_china6(seed=11, steps=504),
                       recommended_parameters("china6")),
}


def _search_inputs(dataset, params):
    """Steps 1–3 (shared by both backends); the ablation times step 4 only."""
    evolving = extract_all_evolving(dataset, params)
    adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
    return list(dataset), adjacency, evolving


def _time_search(sensors, adjacency, evolving, params, repeats: int = 5):
    best = float("inf")
    caps = []
    for _ in range(repeats):
        start = time.perf_counter()
        caps = search_all(sensors, adjacency, evolving, params)
        best = min(best, time.perf_counter() - start)
    return best, caps


def test_santander_array_backend(benchmark, santander, santander_params):
    params = santander_params.with_updates(evolving_backend="array")
    sensors, adjacency, evolving = _search_inputs(santander, params)
    caps = benchmark(search_all, sensors, adjacency, evolving, params)
    assert caps


def test_santander_bitset_backend(benchmark, santander, santander_params):
    params = santander_params.with_updates(evolving_backend="bitset")
    sensors, adjacency, evolving = _search_inputs(santander, params)
    caps = benchmark(search_all, sensors, adjacency, evolving, params)
    assert caps


def test_china6_array_backend(benchmark, china6):
    params = recommended_parameters("china6").with_updates(evolving_backend="array")
    sensors, adjacency, evolving = _search_inputs(china6, params)
    caps = benchmark(search_all, sensors, adjacency, evolving, params)
    assert caps


def test_china6_bitset_backend(benchmark, china6):
    params = recommended_parameters("china6").with_updates(evolving_backend="bitset")
    sensors, adjacency, evolving = _search_inputs(china6, params)
    caps = benchmark(search_all, sensors, adjacency, evolving, params)
    assert caps


def test_bitset_wins_and_records_speedup():
    """The headline ablation: bitset strictly faster, identical CAPs, JSON out."""
    rows = []
    report: dict[str, dict[str, float | int]] = {}
    for name, make in CONFIGS.items():
        dataset, base_params = make()
        results = {}
        for backend in ("array", "bitset"):
            params = base_params.with_updates(evolving_backend=backend)
            sensors, adjacency, evolving = _search_inputs(dataset, params)
            results[backend] = _time_search(sensors, adjacency, evolving, params)
        array_s, array_caps = results["array"]
        bitset_s, bitset_caps = results["bitset"]
        # Optimisation, not approximation: byte-for-byte identical patterns.
        assert [c.to_document() for c in array_caps] == [
            c.to_document() for c in bitset_caps
        ]
        speedup = array_s / bitset_s
        rows.append(
            {
                "dataset": name,
                "caps": len(bitset_caps),
                "array_ms": round(array_s * 1e3, 2),
                "bitset_ms": round(bitset_s * 1e3, 2),
                "speedup": f"{speedup:.2f}x",
            }
        )
        report[name] = {
            "array_seconds": array_s,
            "bitset_seconds": bitset_s,
            "speedup": speedup,
            "num_caps": len(bitset_caps),
        }
        assert bitset_s < array_s, (
            f"bitset backend must beat the array backend on {name}: "
            f"{bitset_s:.4f}s vs {array_s:.4f}s"
        )
    print_table("ablation — evolving-set backend (search step only)", rows)
    REPORT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_ablation_evolving_backend",
                "machine": machine_info(),
                "timed_region": "search_all (step 4), best of 5",
                "datasets": report,
            },
            indent=2,
        )
        + "\n"
    )
