"""Figure 2 — the system pipeline: upload → parameters → results.

Times the full interactive loop through the API server (the WSGI app backed
by the document store and result cache): chunked upload of data.csv,
a mining request, result retrieval, and a repeated request that must be
served from cache.
"""

from __future__ import annotations

from repro.server.app import TestClient, create_app

from .conftest import print_table


def run_pipeline(dataset, params_doc) -> dict:
    """One full Figure-2 cycle; returns observability counters."""
    client = TestClient(create_app())
    upload = client.upload_dataset(dataset, chunk_lines=10_000)
    assert upload.status == 201, upload.json()
    first = client.post(
        "/mine", json_body={"dataset": dataset.name, "parameters": params_doc}
    )
    assert first.status == 200
    listing = client.get(f"/caps/{dataset.name}")
    assert listing.status == 200
    second = client.post(
        "/mine", json_body={"dataset": dataset.name, "parameters": params_doc}
    )
    assert second.status == 200
    stats = client.get("/admin/stats").json()
    return {
        "num_caps": first.json()["num_caps"],
        "first_from_cache": first.json()["from_cache"],
        "second_from_cache": second.json()["from_cache"],
        "cache_hits": stats["cache"]["hits"],
        "store_collections": stats["store"]["collections"],
    }


def test_fig2_upload_mine_view_cycle(benchmark, santander, santander_params):
    params_doc = santander_params.to_document()

    outcome = benchmark(run_pipeline, santander, params_doc)

    print_table(
        "Fig. 2 — pipeline cycle (upload → mine → view → re-mine)",
        [
            {
                "stage": "mine #1",
                "from_cache": outcome["first_from_cache"],
                "caps": outcome["num_caps"],
            },
            {
                "stage": "mine #2",
                "from_cache": outcome["second_from_cache"],
                "caps": outcome["num_caps"],
            },
        ],
    )
    # Shape: the first request computes, the second replays from cache, and
    # both dataset + results live in the store (Figure 2's two DB arrows).
    assert not outcome["first_from_cache"]
    assert outcome["second_from_cache"]
    assert outcome["num_caps"] > 0
    assert outcome["store_collections"]["datasets"] == 1
    assert outcome["store_collections"]["cap_results"] == 1
