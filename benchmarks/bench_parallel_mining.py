"""Parallel engine — serial vs. multi-worker CAP search wall time.

The parallel engine (:mod:`repro.core.parallel`, selected by
``MiningParameters.n_jobs``) shards one mining run by connected component —
splitting oversized components by canonical seed sensor — hands workers the
packed evolving-set buffers zero-copy, and merges deterministically.  This
bench measures the payoff on a **multi-component** configuration: eight
spatial clusters of skewed sizes (40 → 14 sensors), each sharing a jump
driver so its search tree is dense, timed as serial vs. 2 and 4 workers.

Identical output is asserted for every worker count (the engine is an
execution strategy, not an approximation); the measured wall times are
recorded in ``BENCH_parallel_mining.json`` at the repository root.  The
≥ 1.5x speedup assertion at 4 workers only runs when this machine actually
has ≥ 4 usable cores — on smaller machines the numbers are recorded and
the assertion is skipped (CI's 4-vCPU runners enforce it).
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np
import pytest

from repro.core.evolving import extract_all_evolving
from repro.core.parallel import resolve_jobs
from repro.core.parameters import MiningParameters
from repro.core.search import search_all
from repro.core.spatial import build_proximity_graph, connected_components
from repro.core.types import Sensor, SensorDataset

from .conftest import machine_info, print_table

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_mining.json"

#: Skewed cluster sizes: the greedy cost model has to balance these — naive
#: round-robin would leave one worker holding the 40-sensor cluster alone.
CLUSTER_SIZES = (40, 34, 30, 26, 22, 18, 16, 14)
STEPS = 1280


def _usable_cores() -> int:
    # The engine's own "0 = one worker per CPU" resolution, so the bench's
    # skip decision can never disagree with the pool the engine would size.
    return resolve_jobs(0)


def make_multi_component_dataset(seed: int = 13) -> SensorDataset:
    """Eight far-apart clusters; inside each, sensors share a jump driver.

    Every sensor follows its cluster's ±5 jumps with probability 0.85 (plus
    a few private jumps), so subsets keep high co-evolution support and the
    search tree stays dense.  One humidity sensor per cluster among
    temperature sensors keeps the multi-attribute emission rule selective —
    the tree is *explored* everywhere but only mixed subsets are *emitted*,
    which is what makes the timed region search-dominated rather than
    output-dominated.
    """
    rng = np.random.default_rng(seed)
    sensors: list[Sensor] = []
    measurements: dict[str, np.ndarray] = {}
    for ci, size in enumerate(CLUSTER_SIZES):
        base_lat = 40.0 + 0.5 * ci  # ~55 km between clusters: 8 components
        jumps = rng.random(STEPS) < 0.25
        signs = rng.choice([-5.0, 5.0], size=STEPS)
        for k in range(size):
            sid = f"c{ci:02d}s{k:02d}"
            attribute = "humidity" if k == 0 else "temperature"
            sensors.append(
                Sensor(
                    sid, attribute,
                    base_lat + float(rng.uniform(0, 0.003)),
                    -3.0 + float(rng.uniform(0, 0.003)),
                )
            )
            followed = jumps & (rng.random(STEPS) < 0.85)
            private = rng.random(STEPS) < 0.04
            deltas = np.where(followed, signs, 0.0) + np.where(
                private, rng.choice([-5.0, 5.0], size=STEPS), 0.0
            )
            measurements[sid] = deltas.cumsum() + rng.normal(0.0, 0.1, STEPS)
    timeline = [
        datetime(2024, 1, 1) + i * timedelta(hours=1) for i in range(STEPS)
    ]
    return SensorDataset("parallel-bench", timeline, sensors, measurements)


def bench_params() -> MiningParameters:
    return MiningParameters(
        evolving_rate=3.0,
        distance_threshold=1.0,
        max_attributes=3,
        min_support=150,
        max_sensors=4,
    )


def _search_inputs():
    params = bench_params()
    dataset = make_multi_component_dataset()
    evolving = extract_all_evolving(dataset, params)
    adjacency = build_proximity_graph(list(dataset), params.distance_threshold)
    return list(dataset), adjacency, evolving, params


def _time_search(sensors, adjacency, evolving, params, repeats: int = 3):
    best = float("inf")
    caps = []
    for _ in range(repeats):
        start = time.perf_counter()
        caps = search_all(sensors, adjacency, evolving, params)
        best = min(best, time.perf_counter() - start)
    return best, caps


def test_parallel_engine_speedup_and_identity():
    """The headline: identical CAPs at every worker count, wall times out."""
    sensors, adjacency, evolving, params = _search_inputs()
    components = [c for c in connected_components(adjacency) if len(c) >= 2]
    assert len(components) == len(CLUSTER_SIZES), "config must be multi-component"

    serial_s, serial_caps = _time_search(
        sensors, adjacency, evolving, params.with_updates(n_jobs=1)
    )
    serial_docs = [c.to_document() for c in serial_caps]
    assert serial_caps, "the bench config must actually mine patterns"

    cores = _usable_cores()
    rows = [
        {
            "engine": "serial (n_jobs=1)",
            "wall_s": round(serial_s, 3),
            "caps": len(serial_caps),
            "speedup": "1.00x",
        }
    ]
    report: dict[str, object] = {
        "benchmark": "bench_parallel_mining",
        "machine": machine_info(),
        "timed_region": "search_all (step 4), best of 3",
        "config": {
            "clusters": list(CLUSTER_SIZES),
            "steps": STEPS,
            "components": len(components),
            "sensors": len(sensors),
        },
        "usable_cores": cores,
        # Every speedup below is relative to THIS core budget.  On a
        # 1-core container n_jobs>1 measures pure sharding overhead, so a
        # sub-1.0x number there is expected, not a parallelism regression.
        "speedup_context": (
            f"measured on {cores} scheduler-visible core(s); speedups are "
            "only meaningful claims when usable_cores >= n_jobs"
        ),
        "serial_seconds": serial_s,
        "workers": {},
    }
    speedups: dict[int, float] = {}
    for n_jobs in (2, 4):
        wall_s, caps = _time_search(
            sensors, adjacency, evolving, params.with_updates(n_jobs=n_jobs)
        )
        # An execution strategy, not an approximation: byte-identical CAPs.
        assert [c.to_document() for c in caps] == serial_docs, (
            f"n_jobs={n_jobs} must reproduce the serial result exactly"
        )
        speedups[n_jobs] = serial_s / wall_s
        report["workers"][str(n_jobs)] = {
            "seconds": wall_s,
            "speedup": speedups[n_jobs],
        }
        rows.append(
            {
                "engine": f"parallel (n_jobs={n_jobs})",
                "wall_s": round(wall_s, 3),
                "caps": len(caps),
                "speedup": f"{speedups[n_jobs]:.2f}x",
            }
        )
    print_table(
        f"parallel component-sharded engine ({cores} usable cores)", rows
    )
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    if cores >= 4:
        if speedups[4] < 1.5:
            # One re-measurement of both sides before failing: shared CI
            # runners occasionally lose a run to a noisy neighbour, and a
            # single retry absorbs that without weakening the criterion.
            serial_s, _ = _time_search(
                sensors, adjacency, evolving, params.with_updates(n_jobs=1)
            )
            wall_s, _ = _time_search(
                sensors, adjacency, evolving, params.with_updates(n_jobs=4)
            )
            speedups[4] = max(speedups[4], serial_s / wall_s)
        assert speedups[4] >= 1.5, (
            f"4 workers must beat serial by >= 1.5x on a >= 4-core machine; "
            f"got {speedups[4]:.2f}x ({report['workers']['4']})"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 4 usable cores, this machine has "
            f"{cores}; wall times recorded in {REPORT_PATH.name}"
        )
