"""Section 2.2 — MISCELA's tree search vs. naive enumeration.

The paper presents MISCELA as "an efficient algorithm for CAP mining".  The
natural comparator enumerates every connected subset.  Both are timed on the
same input (a single dense station cluster, where enumeration blows up), and
the outputs are checked to be identical — the speed difference is pruning,
not different answers.
"""

from __future__ import annotations

import time

from repro.core.miner import MiscelaMiner, NaiveMiner
from repro.core.parameters import MiningParameters
from repro.data.synthetic import generate_china6

from .conftest import print_table


def _cluster_dataset(steps: int = 200):
    """One spatially connected 36-sensor component (2×3 stations × 6 attrs).

    Cross-row sensors ride independent drivers, so most candidate sets die
    early under ψ — exactly the regime where MISCELA's support pruning pays
    and the naive enumerator still has to visit every connected subset.
    """
    return generate_china6(seed=11, grid_rows=2, grid_cols=3, steps=steps)


PARAMS = MiningParameters(
    evolving_rate=3.0,
    distance_threshold=70.0,
    max_attributes=4,
    min_support=15,
    max_sensors=4,
)


def test_miscela_tree_search(benchmark):
    dataset = _cluster_dataset()
    result = benchmark(MiscelaMiner(PARAMS).mine, dataset)
    assert result.num_caps > 0


def test_naive_enumeration(benchmark):
    dataset = _cluster_dataset()
    miner = NaiveMiner(PARAMS, max_component_size=60)
    result = benchmark(miner.mine, dataset)
    assert result.num_caps > 0


def test_same_output_and_speed_shape(benchmark):
    """Identical CAP sets; MISCELA wins on a dense component."""
    dataset = _cluster_dataset()

    fast_result = benchmark(MiscelaMiner(PARAMS).mine, dataset)

    t0 = time.perf_counter()
    slow_result = NaiveMiner(PARAMS, max_component_size=60).mine(dataset)
    slow_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    MiscelaMiner(PARAMS).mine(dataset)
    fast_elapsed = time.perf_counter() - t0

    fast_caps = {(c.key(), c.support) for c in fast_result.caps}
    slow_caps = {(c.key(), c.support) for c in slow_result.caps}
    print_table(
        "§2.2 — MISCELA vs naive enumeration (36-sensor component)",
        [
            {"miner": "miscela", "seconds": f"{fast_elapsed:.4f}", "caps": len(fast_caps)},
            {"miner": "naive", "seconds": f"{slow_elapsed:.4f}", "caps": len(slow_caps)},
            {"miner": "speedup", "seconds": f"{slow_elapsed / fast_elapsed:.1f}x", "caps": ""},
        ],
    )
    assert fast_caps == slow_caps, "pruned search must not change the answer"
    assert fast_elapsed < slow_elapsed, (
        "MISCELA should beat naive enumeration on a dense component"
    )
