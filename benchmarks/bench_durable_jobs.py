"""Durable job registry — persisted-transition overhead and recovery time.

Durability costs per-transition latency: every lifecycle edge of a
store-backed job reaches the disk (on the WAL engine, one fsync'd record
append), where the in-memory registry just flips fields under a lock.
This bench quantifies that trade and the recovery path that justifies it:

* **transition overhead** — the full open → claim → succeed lifecycle,
  measured per job, on the in-memory :class:`JobStore` vs the
  :class:`DurableJobStore` bound to a real store path (the engine-level
  WAL-vs-snapshot comparison lives in ``bench_wal_store.py``);
* **recovery time** — a registry with 100 queued jobs (the backlog a
  killed server leaves behind) re-opened by a fresh process:
  ``Database(path)`` replay + ``recover()``, the work standing between a
  restart and serving again.

Numbers land in ``BENCH_durable_jobs.json`` (CI's bench lane uploads it).
The assertions check *shape*, not absolutes: durable transitions cost more
than in-memory ones (if not, nothing is being persisted and durability is
fiction), recovery requeues nothing for queued-only registries, and a
100-job recovery stays within interactive startup budgets.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.jobs import DurableJobStore, JobStore
from repro.store.database import Database

from .conftest import machine_info, print_table

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_durable_jobs.json"

JOBS = 60
RECOVERY_BACKLOG = 100
PARAMS = {"min_support": 5, "max_attributes": 2}

#: Generous ceiling for re-opening + recovering a 100-job registry on a
#: noisy shared CI runner; a healthy run is well under a second.
RECOVERY_CEILING_S = 30.0


def _key(index: int) -> str:
    return f"{index:064d}"


def _lifecycle(store, count: int) -> float:
    """Seconds for ``count`` full open → claim → succeed lifecycles."""
    start = time.perf_counter()
    for index in range(count):
        job, created = store.open_job("bench", PARAMS, _key(index))
        assert created
        store.mark_running(job.job_id)
        store.set_progress(job.job_id, 1, 2)
        store.mark_succeeded(job.job_id, result_key=job.key)
    return time.perf_counter() - start


def test_durable_transition_overhead_and_recovery(tmp_path):
    in_memory_s = _lifecycle(JobStore(), JOBS)

    snapshot = tmp_path / "registry.json"
    durable = DurableJobStore(
        Database(snapshot), worker_id="bench", lease_seconds=30.0
    )
    durable_s = _lifecycle(durable, JOBS)
    wal_root = tmp_path / "registry.json.wal"
    assert wal_root.is_dir()
    store_kb = sum(
        p.stat().st_size for p in wal_root.glob("*.log")
    ) / 1024.0

    # Durability must actually cost something: four persisted edges per
    # job.  If the durable path were as fast as in-memory, transitions
    # would not be reaching the disk and crash recovery would be fiction.
    assert durable_s > in_memory_s

    # -- recovery: a fresh process adopts a 100-job backlog -------------------
    backlog_path = tmp_path / "backlog.json"
    writer = DurableJobStore(
        Database(backlog_path), worker_id="dead-server", lease_seconds=30.0
    )
    for index in range(RECOVERY_BACKLOG):
        writer.open_job("bench", PARAMS, _key(1000 + index))

    start = time.perf_counter()
    recovered = DurableJobStore(
        Database(backlog_path), worker_id="restarted", lease_seconds=30.0
    )
    summary = recovered.recover()
    recovery_s = time.perf_counter() - start

    assert len(summary["queued"]) == RECOVERY_BACKLOG
    assert summary["requeued"] == []  # nothing was running
    assert recovery_s < RECOVERY_CEILING_S

    per_in_memory_ms = in_memory_s / JOBS * 1000.0
    per_durable_ms = durable_s / JOBS * 1000.0
    rows = [
        {"registry": "in-memory JobStore",
         "lifecycle_ms_per_job": round(per_in_memory_ms, 3)},
        {"registry": "DurableJobStore (WAL-backed)",
         "lifecycle_ms_per_job": round(per_durable_ms, 3)},
        {"registry": f"recover {RECOVERY_BACKLOG} queued jobs",
         "lifecycle_ms_per_job": round(recovery_s * 1000.0, 1)},
    ]
    print_table("durable job registry costs", rows)
    print(f"  persisted/in-memory overhead: {per_durable_ms / per_in_memory_ms:.0f}x; "
          f"WAL after {JOBS} jobs: {store_kb:.1f} KB")

    REPORT_PATH.write_text(json.dumps({
        "benchmark": "bench_durable_jobs",
        "machine": machine_info(),
        "timed_region": "job lifecycle transitions + startup recovery",
        "jobs": JOBS,
        "in_memory_lifecycle_ms_per_job": per_in_memory_ms,
        "durable_lifecycle_ms_per_job": per_durable_ms,
        "persisted_overhead_x": per_durable_ms / per_in_memory_ms,
        "store_engine": "wal",
        "store_kb_after_lifecycles": store_kb,
        "recovery_backlog_jobs": RECOVERY_BACKLOG,
        "recovery_seconds": recovery_s,
    }, indent=2) + "\n")
