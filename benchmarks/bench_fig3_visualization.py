"""Figure 3 — visualization of CAP mining results.

The paper's Figure 3 has four panels: (A) sensor map, (B) map with the
clicked sensor's correlated sensors highlighted, (C) measurement chart,
(D) zoomed measurement chart.  This bench renders the full report (all four
panels) for a mined result, checks the highlight semantics — the highlighted
set is exactly the CAP's sensor set — and times the render.
"""

from __future__ import annotations

import re

from repro.core.miner import MiscelaMiner
from repro.viz.colors import HIGHLIGHT_COLOR
from repro.viz.map_view import render_map
from repro.viz.report import CapReport, densest_window

from .conftest import print_table


def test_fig3_report_render(benchmark, santander, santander_params):
    result = MiscelaMiner(santander_params).mine(santander)
    assert result.num_caps > 0
    report = CapReport(santander, result, max_caps=5)

    html = benchmark(report.to_html)

    rows = [
        {"panel": "(A) overview map", "present": "(A) all sensors" in html},
        {"panel": "(B) highlighted map", "present": "(B) map, CAP highlighted" in html},
        {"panel": "(C) full chart", "present": "(C) measurements, full range" in html},
        {"panel": "(D) zoom chart", "present": "(D) zoom" in html},
    ]
    print_table("Fig. 3 — report panels", rows)
    assert all(row["present"] for row in rows)

    # Highlight semantics (the paper's click interaction): the halo count on
    # the per-CAP map equals the CAP's sensor count.
    cap = report.caps[0]
    single_map = render_map(
        santander, highlighted_sensors=cap.sensor_ids, dim_unhighlighted=True
    ).to_string()
    halos = len(re.findall(rf'stroke="{HIGHLIGHT_COLOR}"', single_map))
    assert halos == len(cap.sensor_ids)

    # The zoom window really is the densest co-evolution burst.
    lo, hi = densest_window(cap, santander.num_timestamps, report.zoom_width)
    inside = sum(1 for i in cap.evolving_indices if lo <= i < hi)
    outside_windows = max(
        sum(1 for i in cap.evolving_indices if s <= i < s + (hi - lo))
        for s in range(0, santander.num_timestamps - (hi - lo) + 1)
    )
    assert inside == outside_windows
