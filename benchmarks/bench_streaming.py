"""Extension bench — incremental vs. from-scratch re-mining on appends.

The streaming extension (see DESIGN.md "future-work features") maintains
evolving sets across appends so interactive re-mining after new data
arrives skips extraction and graph construction.  This bench appends one
day of data to a primed stream and compares re-mining paths:

* batch     — rebuild the dataset and run the full four-step miner;
* streaming — extend() the maintained state, then search only.

Identical results are asserted; streaming should win since steps 2–3 are
amortised.
"""

from __future__ import annotations

from repro.core.miner import MiscelaMiner
from repro.core.parameters import MiningParameters
from repro.core.streaming import StreamingMiner
from repro.data.synthetic import generate_santander

from .conftest import print_table

PARAMS = MiningParameters(
    evolving_rate=3.0, distance_threshold=0.35, max_attributes=3, min_support=5
)


def _split(steps_total=400, cut=376):
    full = generate_santander(seed=11, neighbourhoods=6, steps=steps_total)
    prefix = full.slice_time(full.timeline[0], full.timeline[cut], name=full.name)
    tail_t = list(full.timeline[cut:])
    tail_v = {sid: full.values(sid)[cut:] for sid in full.sensor_ids}
    return full, prefix, tail_t, tail_v


def test_batch_remine_after_append(benchmark):
    full, _, _, _ = _split()

    def batch_path():
        return MiscelaMiner(PARAMS).mine(full)

    result = benchmark(batch_path)
    assert result.num_caps > 0


def test_streaming_remine_after_append(benchmark):
    full, prefix, tail_t, tail_v = _split()

    def streaming_path():
        miner = StreamingMiner(PARAMS, prefix)
        miner.extend(tail_t, tail_v)
        return miner.mine()

    # Note: construction (the one-time priming) is inside the timed region
    # here, making this an *upper* bound on the steady-state append cost.
    result = benchmark(streaming_path)
    assert result.num_caps > 0


def test_streaming_equals_batch(benchmark):
    full, prefix, tail_t, tail_v = _split()
    miner = StreamingMiner(PARAMS, prefix)
    miner.extend(tail_t, tail_v)

    streaming_result = benchmark(miner.mine)

    batch_result = MiscelaMiner(PARAMS).mine(full)
    streaming_sig = {(c.key(), c.support) for c in streaming_result.caps}
    batch_sig = {(c.key(), c.support) for c in batch_result.caps}
    print_table(
        "extension — streaming vs batch re-mining (24-step append)",
        [
            {"path": "batch (4 steps)", "caps": len(batch_sig)},
            {"path": "streaming (search only)", "caps": len(streaming_sig)},
        ],
    )
    assert streaming_sig == batch_sig
