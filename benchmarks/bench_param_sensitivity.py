"""Section 2.1 — parameter sensitivity of the number of CAPs.

The paper documents how ε, η, μ, ψ move the number of discovered patterns.
This bench sweeps each parameter on synthetic Santander, prints the curves,
and asserts their monotone direction:

* η (distance threshold) ↑ → #CAPs ↑
* μ (max attributes)     ↑ → #CAPs ↑
* ψ (min support)        ↑ → #CAPs ↓
* ε (evolving rate)      ↑ → #CAPs ↓  — per the definition; the paper's
  prose sentence for ε is inverted relative to its own definition, see the
  note in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import expected_direction, is_monotone, sweep

from .conftest import print_table

SWEEPS = {
    "evolving_rate": [1.0, 2.0, 3.0, 5.0, 8.0],
    "distance_threshold": [0.05, 0.15, 0.35, 0.7],
    "max_attributes": [2, 3, 4, 5],
    "min_support": [2, 5, 10, 20, 40],
}


@pytest.mark.parametrize("parameter", list(SWEEPS))
def test_sensitivity_curve(benchmark, santander, santander_params, parameter):
    values = SWEEPS[parameter]

    points = benchmark(sweep, santander, santander_params, parameter, values)

    print_table(
        f"§2.1 sensitivity — #CAPs vs {parameter}",
        [
            {
                parameter: p.value,
                "caps": p.num_caps,
                "mine_ms": f"{p.elapsed_seconds * 1000:.1f}",
            }
            for p in points
        ],
    )
    direction = expected_direction(parameter)
    assert is_monotone(points, direction), (
        f"#CAPs should be {direction} in {parameter}: "
        f"{[(p.value, p.num_caps) for p in points]}"
    )
    # The sweep is informative, not flat: the extremes differ.
    assert points[0].num_caps != points[-1].num_caps
