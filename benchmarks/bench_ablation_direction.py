"""Ablation — direction-agnostic vs. direction-aware co-evolution.

The demo paper defines co-evolution as "increase/decrease at the same
timestamp" (direction-agnostic); the MDM 2019 definition additionally tracks
direction patterns.  Direction awareness can only shrink supports (it
filters inconsistent timestamps), so the direction-aware CAP set is a
refinement.  This ablation times both modes and checks the refinement
relation, which is the correctness story for offering both.
"""

from __future__ import annotations

from repro.core.miner import MiscelaMiner

from .conftest import print_table


def test_direction_agnostic(benchmark, santander, santander_params):
    result = benchmark(MiscelaMiner(santander_params).mine, santander)
    assert result.num_caps > 0


def test_direction_aware(benchmark, santander, santander_params):
    params = santander_params.with_updates(direction_aware=True)
    result = benchmark(MiscelaMiner(params).mine, santander)
    assert result.num_caps > 0


def test_refinement_relation(benchmark, santander, santander_params):
    aware_params = santander_params.with_updates(direction_aware=True)

    aware = benchmark(MiscelaMiner(aware_params).mine, santander)

    agnostic = MiscelaMiner(santander_params).mine(santander)
    agnostic_by_key = {c.key(): c for c in agnostic.caps}
    aware_by_key = {c.key(): c for c in aware.caps}

    print_table(
        "ablation — co-evolution direction semantics",
        [
            {"mode": "agnostic", "caps": agnostic.num_caps},
            {"mode": "aware", "caps": aware.num_caps},
        ],
    )
    # Refinement: every direction-aware CAP exists agnostically with at
    # least the same support.
    assert set(aware_by_key) <= set(agnostic_by_key)
    for key, cap in aware_by_key.items():
        assert cap.support <= agnostic_by_key[key].support
