"""Section 4 dataset inventory — the paper's dataset table.

Regenerates the table listing each demonstration dataset's sensor count,
record count, and attributes — paper-published numbers next to the scaled
synthetic stand-ins this repository generates (see the substitution notes
in DESIGN.md).  Times the generation of all four datasets.
"""

from __future__ import annotations

from repro.data.datasets import DATASET_NAMES, dataset_table
from repro.data.synthetic import PAPER_SHAPES

from .conftest import print_table


def test_dataset_inventory_table(benchmark):
    rows = benchmark(dataset_table, seed=11)

    print_table("§4 dataset inventory (paper vs generated)", rows)

    assert [r["dataset"] for r in rows] == list(DATASET_NAMES)
    by_name = {r["dataset"]: r for r in rows}

    # Paper-published shape is preserved in the table.
    assert by_name["santander"]["paper_sensors"] == 552
    assert by_name["santander"]["paper_records"] == 2_329_936
    assert by_name["china6"]["paper_sensors"] == 9_438
    assert by_name["china13"]["paper_sensors"] == 4_810
    assert by_name["covid19"]["paper_sensors"] == 12

    # Attribute sets match the paper exactly (counts).
    for name in DATASET_NAMES:
        assert by_name[name]["generated_attributes"] == len(
            PAPER_SHAPES[name]["attributes"]
        )

    # COVID-19 is generated at full published sensor scale; the others are
    # scaled down but structurally faithful.
    assert by_name["covid19"]["generated_sensors"] == 12
    for name in ("santander", "china6", "china13"):
        assert 0 < by_name[name]["generated_sensors"] <= by_name[name]["paper_sensors"]
