"""Extension bench — time-delayed mining cost vs. the delay bound δ.

The DPD 2020 extension multiplies the search's branching factor by the
number of candidate delays per added sensor (2δ+1 before span pruning).
This bench measures how mining time and pattern counts grow with δ on
synthetic Santander, and checks the semantic containment: every
simultaneous CAP is also found (with at least its support) at every δ.
"""

from __future__ import annotations

import time

import pytest

from repro.core.miner import MiscelaMiner
from repro.core.parameters import MiningParameters

from .conftest import print_table

BASE = MiningParameters(
    evolving_rate=3.0, distance_threshold=0.35, max_attributes=3,
    min_support=8, max_sensors=3,
)


@pytest.mark.parametrize("delta", [0, 1, 2])
def test_delayed_mining(benchmark, santander, delta):
    params = BASE.with_updates(max_delay=delta)
    result = benchmark(MiscelaMiner(params).mine, santander)
    assert result.num_caps > 0


def test_delay_growth_curve(benchmark, santander):
    rows = []
    results = {}
    for delta in (0, 1, 2):
        params = BASE.with_updates(max_delay=delta)
        t0 = time.perf_counter()
        results[delta] = MiscelaMiner(params).mine(santander)
        elapsed = time.perf_counter() - t0
        rows.append(
            {"δ": delta, "caps": results[delta].num_caps, "seconds": f"{elapsed:.3f}"}
        )

    benchmark(MiscelaMiner(BASE.with_updates(max_delay=1)).mine, santander)

    print_table("extension — delayed mining vs δ", rows)
    # More delay freedom can only add patterns (a simultaneous pattern is a
    # delayed pattern with all-zero delays).
    counts = [results[d].num_caps for d in (0, 1, 2)]
    assert counts[0] <= counts[1] <= counts[2]
    simultaneous = {c.key(): c.support for c in results[0].caps}
    for delta in (1, 2):
        delayed = {c.key(): c.support for c in results[delta].caps}
        for key, support in simultaneous.items():
            assert key in delayed
            assert delayed[key] >= support
