"""Ablation — linear segmentation algorithms (MISCELA step 1).

MISCELA filters "uninteresting data fluctuation" with linear segmentation
before extracting evolving timestamps.  This ablation compares the three
classic algorithms (and no filtering) on a noisy dataset: how much sub-ε
jitter each removes, what it costs, and whether the mined CAP set survives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evolving import extract_evolving
from repro.core.miner import MiscelaMiner
from repro.data.synthetic import generate_santander

from .conftest import print_table

METHODS = ["none", "sliding_window", "bottom_up", "top_down"]


def noisy_series(seed: int = 0, n: int = 600) -> np.ndarray:
    """A step signal under heavy jitter: jumps of 5, jitter of ±0.9."""
    rng = np.random.default_rng(seed)
    steps = np.where(rng.random(n) < 0.05, rng.choice([-5.0, 5.0], n), 0.0)
    steps[0] = 0.0
    return np.cumsum(steps) + rng.uniform(-0.9, 0.9, n)


@pytest.mark.parametrize("method", METHODS)
def test_segmentation_method(benchmark, method):
    values = noisy_series()

    ev = benchmark(
        extract_evolving, values, 1.5,
        method, 1.2 if method != "none" else 0.0,
    )

    # All methods keep the real jumps; the filtered ones drop jitter events.
    assert len(ev) >= 0  # smoke: extraction runs for every method


def test_segmentation_ablation_table(benchmark):
    values = noisy_series()
    rows = []
    for method in METHODS:
        error = 1.2 if method != "none" else 0.0
        ev = extract_evolving(values, 1.5, method, error)
        rows.append({"method": method, "evolving_timestamps": len(ev)})

    benchmark(extract_evolving, values, 1.5, "bottom_up", 1.2)

    print_table("ablation — evolving timestamps per segmentation method", rows)
    counts = {r["method"]: r["evolving_timestamps"] for r in rows}
    # The filtered extractions must remove jitter relative to raw.
    for method in ("sliding_window", "bottom_up", "top_down"):
        assert counts[method] < counts["none"], (
            f"{method} should filter sub-ε jitter (got {counts[method]} "
            f"vs raw {counts['none']})"
        )

    # Mining still finds the planted structure with segmentation on.
    dataset = generate_santander(seed=11)
    from repro.data.datasets import recommended_parameters

    params = recommended_parameters("santander").with_updates(
        segmentation="bottom_up", segmentation_error=0.5
    )
    result = MiscelaMiner(params).mine(dataset)
    assert result.num_caps > 0
