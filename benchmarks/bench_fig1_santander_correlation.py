"""Figure 1 — traffic volume ↔ temperature correlation in Santander.

The paper's Figure 1 shows three spatially close sensors (two traffic, one
temperature) whose measurements co-evolve.  This bench mines the synthetic
Santander dataset and checks that:

* a CAP over {traffic_volume, temperature} exists,
* its sensors are within the distance threshold of each other (panel a),
* its measurements co-evolve at the recorded timestamps (panel b),

then times the end-to-end mining run that produces it.
"""

from __future__ import annotations

from repro.core.miner import MiscelaMiner

from .conftest import print_table


def test_fig1_traffic_temperature_cap(benchmark, santander, santander_params):
    miner = MiscelaMiner(santander_params)

    result = benchmark(miner.mine, santander)

    fig1_caps = [
        cap for cap in result.caps
        if cap.attributes >= {"traffic_volume", "temperature"}
    ]
    rows = [
        {
            "sensors": ", ".join(sorted(cap.sensor_ids)),
            "attributes": ", ".join(sorted(cap.attributes)),
            "support": cap.support,
        }
        for cap in fig1_caps[:5]
    ]
    print_table("Fig. 1 — traffic_volume × temperature CAPs (Santander)", rows)

    # Shape assertions: the paper's correlation exists and is spatial.
    assert fig1_caps, "expected at least one traffic×temperature CAP"
    cap = fig1_caps[0]
    members = sorted(cap.sensor_ids)
    for i, a in enumerate(members):
        sa = santander.sensor(a)
        # Connected: every sensor within eta of at least one other member.
        assert any(
            sa.distance_km(santander.sensor(b)) <= santander_params.distance_threshold
            for b in members
            if b != a
        )
    # Co-evolution is real: every recorded timestamp is an evolving
    # timestamp of every member (panel (b) of the figure).
    for index in cap.evolving_indices:
        for sid in cap.sensor_ids:
            assert index in result.evolving[sid]
    assert cap.support >= santander_params.min_support
