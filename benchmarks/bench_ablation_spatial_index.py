"""Ablation — grid index vs. brute-force η-graph construction (step 3).

The proximity graph is rebuilt on every mining request, so its cost matters
for interactivity.  Timed on a country-scale sensor cloud; identical output
is asserted (the grid is an optimisation, not an approximation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spatial import build_proximity_graph
from repro.core.types import Sensor

from .conftest import print_table


def sensor_cloud(n: int = 900, seed: int = 11) -> list[Sensor]:
    """n sensors scattered over a China-sized box."""
    rng = np.random.default_rng(seed)
    return [
        Sensor(
            f"s{i}", "pm25",
            float(rng.uniform(23.0, 41.0)), float(rng.uniform(104.0, 122.0)),
        )
        for i in range(n)
    ]


ETA_KM = 60.0


def test_grid_index(benchmark):
    sensors = sensor_cloud()
    graph = benchmark(build_proximity_graph, sensors, ETA_KM, "grid")
    assert len(graph) == len(sensors)


def test_brute_force(benchmark):
    sensors = sensor_cloud()
    graph = benchmark(build_proximity_graph, sensors, ETA_KM, "brute")
    assert len(graph) == len(sensors)


def test_identical_graphs(benchmark):
    sensors = sensor_cloud(400)

    grid = benchmark(build_proximity_graph, sensors, ETA_KM, "grid")

    brute = build_proximity_graph(sensors, ETA_KM, "brute")
    edges = sum(len(v) for v in grid.values()) // 2
    print_table(
        "ablation — spatial index equivalence (400 sensors, η=60 km)",
        [
            {"method": "grid", "nodes": len(grid), "edges": edges},
            {"method": "brute", "nodes": len(brute),
             "edges": sum(len(v) for v in brute.values()) // 2},
        ],
    )
    assert grid == brute
