"""Section 4, China scenario — wind direction explains who correlates.

"Sensors are not correlated if two sensors are vertically (north and south)
close to each other, but if sensors are horizontally (east and west) close,
they are correlated.  These are often caused by wind directions."

This bench mines synthetic China6 (whose pollution events propagate along
west→east corridors), classifies every cross-station CAP pair by geographic
axis, and asserts the paper's east–west dominance.
"""

from __future__ import annotations

from repro.analysis.statistics import axis_correlation_report, pairwise_co_evolution
from repro.core.miner import MiscelaMiner
from repro.data.datasets import recommended_parameters

from .conftest import print_table


def test_china_wind_axis(benchmark, china6):
    params = recommended_parameters("china6")
    miner = MiscelaMiner(params)

    result = benchmark(miner.mine, china6)

    report = axis_correlation_report(china6, result.caps, min_km=10.0)
    total = sum(report.values())
    print_table(
        "§4 China — cross-station CAP pairs by axis",
        [
            {
                "axis": axis,
                "pairs": count,
                "share": f"{100.0 * count / total:.0f}%" if total else "-",
            }
            for axis, count in report.items()
        ],
    )

    assert result.num_caps > 0
    assert total > 0, "expected cross-station patterns"
    # The paper's shape: east-west dominates, north-south is (near) absent.
    assert report["east-west"] > 5 * max(report["north-south"], 1)

    # Spot check at sensor level, like an attendee clicking neighbours:
    probe, east, north = "china6-r1c1-pm25", "china6-r1c2-pm25", "china6-r0c1-pm25"
    rates = pairwise_co_evolution(china6, result.evolving, [probe, east, north])
    east_rate = rates[tuple(sorted((probe, east)))]
    north_rate = rates[tuple(sorted((probe, north)))]
    assert east_rate > 0.5
    assert north_rate < 0.3
