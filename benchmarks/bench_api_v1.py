"""API v1 serving economics: paginated CAP pages and conditional GETs.

ISSUE 4 redesigned the HTTP surface around result resources; this bench
quantifies the two serving-tier wins over the legacy RPC shape:

* **page vs full payload** — the legacy ``POST /mine`` replays the *entire*
  CAP list on every cache hit; v1 clients fetch
  ``GET /api/v1/results/{key}/caps?offset=&limit=`` pages.  Measured: p50
  latency and body size of a page against the full legacy payload, plus
  the byte-identity of all pages concatenated (the acceptance criterion).
* **304 hit rate** — result metadata carries an ``ETag`` (cache key +
  dataset generation); a well-behaved client revalidates with
  ``If-None-Match`` and pays a header-only 304 instead of a body.
  Measured: the revalidation hit rate (must be 100% for an unchanged
  dataset) and the 304 latency against an unconditional GET.

Results land in ``BENCH_api_v1.json`` at the repository root (CI's bench
lane uploads it).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_santander
from repro.server.app import TestClient, create_app

from .conftest import machine_info, print_table

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_api_v1.json"

PAGE_LIMIT = 20
SAMPLES = 40


def _timed_ms(fn) -> tuple[float, object]:
    start = time.perf_counter()
    value = fn()
    return (time.perf_counter() - start) * 1000.0, value


def _p50(samples: list[float]) -> float:
    return statistics.median(samples)


def test_api_v1_pages_and_conditional_gets():
    dataset = generate_santander(seed=3, neighbourhoods=10, steps=360)
    params = recommended_parameters("santander").with_updates(min_support=5)
    app = create_app(job_workers=1)
    client = TestClient(app)
    try:
        assert client.upload_dataset(dataset).status == 201

        created = client.post(
            f"/api/v1/datasets/{dataset.name}/results",
            json_body={"parameters": params.to_document()},
        )
        assert created.status == 201, created.json()
        key = created.json()["key"]
        num_caps = created.json()["num_caps"]
        assert num_caps > PAGE_LIMIT, (
            f"bench needs more than one page, got {num_caps} CAPs"
        )

        # -- legacy full payload (cache hits) vs one v1 page -----------------
        mine_body = {"dataset": dataset.name, "parameters": params.to_document()}
        full_ms: list[float] = []
        for _ in range(SAMPLES):
            elapsed, response = _timed_ms(lambda: client.post("/mine", json_body=mine_body))
            assert response.status == 200
            full_ms.append(elapsed)
        full_bytes = len(response.body)

        page_url = f"/api/v1/results/{key}/caps?offset=0&limit={PAGE_LIMIT}"
        page_ms: list[float] = []
        for _ in range(SAMPLES):
            elapsed, response = _timed_ms(lambda: client.get(page_url))
            assert response.status == 200
            page_ms.append(elapsed)
        page_bytes = len(response.body)

        # -- acceptance criterion: pages concatenate to the legacy CAP list --
        legacy_caps = client.post("/mine", json_body=mine_body).json()["caps"]
        paged: list[dict] = []
        offset = 0
        while offset < num_caps:
            body = client.get(
                f"/api/v1/results/{key}/caps?offset={offset}&limit={PAGE_LIMIT}"
            ).json()
            paged.extend(body["caps"])
            offset += PAGE_LIMIT
        assert json.dumps(paged, sort_keys=True) == json.dumps(
            legacy_caps, sort_keys=True
        ), "concatenated v1 pages must be byte-identical to the legacy payload"

        # -- conditional GETs: ETag revalidation --------------------------------
        meta_url = f"/api/v1/results/{key}"
        uncond_ms: list[float] = []
        for _ in range(SAMPLES):
            elapsed, response = _timed_ms(lambda: client.get(meta_url))
            assert response.status == 200
            uncond_ms.append(elapsed)
        etag = response.headers["ETag"]

        cond_ms: list[float] = []
        not_modified = 0
        for _ in range(SAMPLES):
            elapsed, response = _timed_ms(
                lambda: client.get(meta_url, headers={"If-None-Match": etag})
            )
            cond_ms.append(elapsed)
            if response.status == 304:
                not_modified += 1
                assert response.body == b""
        hit_rate = not_modified / SAMPLES

        rows = [
            {"metric": "POST /mine full payload p50 (v0)",
             "ms": round(_p50(full_ms), 3), "bytes": full_bytes},
            {"metric": f"GET caps page p50 (limit={PAGE_LIMIT})",
             "ms": round(_p50(page_ms), 3), "bytes": page_bytes},
            {"metric": "GET result metadata p50",
             "ms": round(_p50(uncond_ms), 3), "bytes": len(client.get(meta_url).body)},
            {"metric": "conditional GET p50 (If-None-Match)",
             "ms": round(_p50(cond_ms), 3), "bytes": 0},
            {"metric": "304 hit rate", "ms": "", "bytes": f"{hit_rate:.0%}"},
        ]
        print_table(
            f"API v1 vs legacy full payload ({num_caps} CAPs)", rows
        )

        REPORT_PATH.write_text(json.dumps({
            "benchmark": "bench_api_v1",
            "machine": machine_info(),
            "timed_region": "in-process API request latencies (cache-hot)",
            "num_caps": num_caps,
            "page_limit": PAGE_LIMIT,
            "samples": SAMPLES,
            "full_payload_p50_ms": _p50(full_ms),
            "full_payload_bytes": full_bytes,
            "page_p50_ms": _p50(page_ms),
            "page_bytes": page_bytes,
            "metadata_p50_ms": _p50(uncond_ms),
            "conditional_p50_ms": _p50(cond_ms),
            "not_modified_hit_rate": hit_rate,
            "payload_reduction": full_bytes / page_bytes,
        }, indent=2) + "\n")

        # The redesign's claims: every repeated conditional GET revalidates,
        # and a page is strictly cheaper than the full legacy payload.
        assert hit_rate == 1.0, "ETag revalidation must hit for unchanged data"
        assert page_bytes < full_bytes, "a page must be smaller than the full payload"
        assert _p50(page_ms) < _p50(full_ms), (
            "serving one page must beat re-serializing the full payload"
        )
    finally:
        app.close()
