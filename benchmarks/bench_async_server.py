"""Async job queue — submit latency and poll responsiveness under load.

PR 2 made one mining run saturate the machine; this subsystem (ISSUE 3)
keeps the *serving tier* responsive while that happens.  The bench drives
the real API app in-process and measures the two latencies the async
redesign is about:

* **submit → 202**: how long ``POST /mine mode=async`` takes to hand back a
  job id (the old sync path held the connection for the whole mine);
* **poll under load**: how long ``GET /jobs/{id}`` and ``GET /admin/stats``
  take *while the background executor is mining* — the "interactive map
  stays live" guarantee, quantified.

It also asserts the parity acceptance criterion: the finished job's result
payload is byte-identical to the sync ``POST /mine`` response for the same
(dataset, parameters).  Results land in ``BENCH_async_server.json`` at the
repository root (CI's bench lane uploads it).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.server.app import TestClient, create_app

from .bench_parallel_mining import bench_params, make_multi_component_dataset
from .conftest import machine_info, print_table

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_async_server.json"

#: Generous ceilings — the point is "milliseconds, not the whole mine", and
#: shared CI runners are noisy.  A poll that takes longer than this while a
#: mine runs means the serving tier is blocked, which is the regression
#: this bench exists to catch.
SUBMIT_CEILING_S = 2.0
POLL_CEILING_S = 2.0
TIMEOUT_S = 300.0


def _poll_ms(client: TestClient, path: str) -> float:
    start = time.perf_counter()
    response = client.get(path)
    elapsed = (time.perf_counter() - start) * 1000.0
    assert response.status == 200, response.json()
    return elapsed


def test_async_submit_and_poll_latency():
    # The PR 2 bench's multi-component config: a mine that takes seconds,
    # so "polls answered during the mine" is actually exercised.
    dataset = make_multi_component_dataset()
    params = bench_params().to_document()
    app = create_app(job_workers=1)
    client = TestClient(app)
    try:
        assert client.upload_dataset(dataset).status == 201

        submit_start = time.perf_counter()
        submitted = client.post(
            "/mine",
            json_body={
                "dataset": dataset.name, "parameters": params, "mode": "async",
            },
        )
        submit_s = time.perf_counter() - submit_start
        assert submitted.status == 202, submitted.json()
        job_id = submitted.json()["job_id"]

        first_poll_ms = _poll_ms(client, f"/jobs/{job_id}")

        status_ms: list[float] = []
        stats_ms: list[float] = []
        progress_trace: list[float] = []
        deadline = time.monotonic() + TIMEOUT_S
        while time.monotonic() < deadline:
            start = time.perf_counter()
            doc = client.get(f"/jobs/{job_id}").json()
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            progress_trace.append(doc["progress"])
            if doc["state"] in ("succeeded", "failed", "cancelled"):
                break
            status_ms.append(elapsed_ms)  # only polls made *during* the mine
            stats_ms.append(_poll_ms(client, "/admin/stats"))
            time.sleep(0.01)
        assert doc["state"] == "succeeded", doc.get("error")
        assert progress_trace == sorted(progress_trace), "progress regressed"
        assert progress_trace[-1] == 1.0

        mine_s = doc["result"]["elapsed_seconds"]
        sync = client.post(
            "/mine", json_body={"dataset": dataset.name, "parameters": params}
        )
        assert json.dumps(doc["result"], sort_keys=True) == json.dumps(
            sync.json(), sort_keys=True
        ), "async result must be byte-identical to the sync response"

        rows = [
            {"metric": "submit -> 202", "ms": round(submit_s * 1000.0, 2)},
            {"metric": "first GET /jobs/{id}", "ms": round(first_poll_ms, 2)},
        ]
        report: dict[str, object] = {
            "benchmark": "bench_async_server",
            "machine": machine_info(),
            "timed_region": "API latencies while a background mine runs",
            "mine_seconds": mine_s,
            "submit_ms": submit_s * 1000.0,
            "first_poll_ms": first_poll_ms,
            "polls_during_mine": len(status_ms),
        }
        for name, samples in (("GET /jobs/{id}", status_ms),
                              ("GET /admin/stats", stats_ms)):
            if samples:
                p50 = statistics.median(samples)
                worst = max(samples)
                rows.append({"metric": f"{name} p50 (during mine)",
                             "ms": round(p50, 2)})
                rows.append({"metric": f"{name} max (during mine)",
                             "ms": round(worst, 2)})
                key = "status_poll" if "jobs" in name else "stats_poll"
                report[f"{key}_p50_ms"] = p50
                report[f"{key}_max_ms"] = worst
        rows.append({"metric": "background mine wall", "ms": round(mine_s * 1000.0, 1)})
        print_table("async server responsiveness (in-process app)", rows)
        REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

        # The serving-tier guarantees, with CI-noise headroom.
        assert submit_s < SUBMIT_CEILING_S, (
            f"submit took {submit_s:.2f}s — the 202 must not wait for mining"
        )
        assert first_poll_ms / 1000.0 < POLL_CEILING_S
        for samples in (status_ms, stats_ms):
            if samples:
                assert statistics.median(samples) / 1000.0 < POLL_CEILING_S, (
                    "polls during a background mine must stay interactive"
                )
    finally:
        app.close()
