"""Shared benchmark fixtures and reporting helpers.

Every file in this directory regenerates one table or figure of the paper
(see the experiment index in DESIGN.md).  Conventions:

* each bench prints the rows/series the paper reports (visible with
  ``pytest benchmarks/ --benchmark-only -s``), and *asserts the shape* —
  who wins, directions of monotone curves, which patterns appear;
* the timed region (the ``benchmark(...)`` call) is the operation the
  experiment is about; setup stays outside it.
"""

from __future__ import annotations

import os
import platform

import pytest

from repro.data.datasets import recommended_parameters
from repro.data.synthetic import (
    generate_china6,
    generate_covid19,
    generate_santander,
)


def machine_info() -> dict:
    """Hardware context stamped into every ``BENCH_*.json`` artifact.

    A recorded speedup (or its absence) is meaningless without the core
    count it was measured on — the parallel-mining bench once looked like a
    0.7x "regression" that was really a 1-core container.  ``cpu_count`` is
    the machine's view; ``scheduler_visible_cores`` is what this process
    may actually use (cgroup/affinity limits make it the honest number).
    """
    visible: int | None = None
    if hasattr(os, "sched_getaffinity"):
        try:
            visible = len(os.sched_getaffinity(0))
        except OSError:
            visible = None
    return {
        "cpu_count": os.cpu_count(),
        "scheduler_visible_cores": visible,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def print_table(title: str, rows: list[dict]) -> None:
    """Render rows as an aligned text table (the bench's 'paper output')."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))


@pytest.fixture(scope="session")
def santander():
    """The scaled Santander dataset used across benches (seed-pinned)."""
    return generate_santander(seed=11)


@pytest.fixture(scope="session")
def santander_params():
    return recommended_parameters("santander")


@pytest.fixture(scope="session")
def china6():
    return generate_china6(seed=11)


@pytest.fixture(scope="session")
def covid19():
    return generate_covid19(seed=11)
