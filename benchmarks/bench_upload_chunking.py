"""Section 3.2 — scalable chunked upload.

"For scalably uploading large datasets, we divide the file into 10,000
lines and send each divided set to our system."  This bench pushes a
data.csv of growing size through the full three-step upload protocol and
checks that (a) the chunk count is ceil(rows / 10,000) and (b) per-row cost
stays flat as the dataset grows (linear scaling).
"""

from __future__ import annotations

import math
import time

import pytest

from repro.data.csv_io import dataset_to_rows, iter_chunks
from repro.data.synthetic import generate_santander
from repro.server.app import TestClient, create_app

from .conftest import print_table


def upload(dataset, chunk_lines=10_000):
    client = TestClient(create_app())
    response = client.upload_dataset(dataset, chunk_lines=chunk_lines)
    assert response.status == 201, response.json()
    return client


@pytest.mark.parametrize("steps", [120, 480])
def test_chunked_upload(benchmark, steps):
    dataset = generate_santander(seed=11, neighbourhoods=6, steps=steps)
    benchmark(upload, dataset)


def test_chunk_count_and_linear_scaling(benchmark):
    small = generate_santander(seed=11, neighbourhoods=6, steps=120)
    large = generate_santander(seed=11, neighbourhoods=6, steps=600)

    benchmark(upload, small)

    rows_small, _ = dataset_to_rows(small)
    rows_large, _ = dataset_to_rows(large)
    chunks_small = list(iter_chunks(rows_small, 10_000))
    chunks_large = list(iter_chunks(rows_large, 10_000))
    assert len(chunks_small) == math.ceil(len(rows_small) / 10_000)
    assert len(chunks_large) == math.ceil(len(rows_large) / 10_000)

    t0 = time.perf_counter()
    upload(small)
    t_small = time.perf_counter() - t0
    t0 = time.perf_counter()
    upload(large)
    t_large = time.perf_counter() - t0

    per_row_small = t_small / len(rows_small)
    per_row_large = t_large / len(rows_large)
    print_table(
        "§3.2 — chunked upload scaling (10,000-line chunks)",
        [
            {
                "rows": len(rows_small),
                "chunks": len(chunks_small),
                "seconds": f"{t_small:.3f}",
                "µs_per_row": f"{per_row_small * 1e6:.1f}",
            },
            {
                "rows": len(rows_large),
                "chunks": len(chunks_large),
                "seconds": f"{t_large:.3f}",
                "µs_per_row": f"{per_row_large * 1e6:.1f}",
            },
        ],
    )
    # Linear shape: per-row cost within 4x across a 5x size change (slack
    # for fixed setup costs and timer noise).
    assert per_row_large < per_row_small * 4
