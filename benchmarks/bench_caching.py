"""Section 3.3 — the caching mechanism.

"This caching mechanism accelerates the analytic process and reduces the
computational costs when the front end receives multiple requests at the
same time."  Two timed cases over the same (dataset, parameters):

* cold — cache emptied before every request (always re-mines);
* warm — cache primed once, every request replays the stored result.

The shape to reproduce: warm ≪ cold, and a burst of repeated requests is
dominated by a single mining run.
"""

from __future__ import annotations

import time

from repro.cache.cache import ResultCache
from repro.store.database import Database

from .conftest import print_table


def test_cache_cold(benchmark, santander, santander_params):
    cache = ResultCache(Database())

    def cold_request():
        cache.invalidate_dataset(santander.name)
        return cache.mine_cached(santander, santander_params)

    result = benchmark(cold_request)
    assert not result.from_cache
    assert cache.stats.misses > 0


def test_cache_warm(benchmark, santander, santander_params):
    cache = ResultCache(Database())
    cache.mine_cached(santander, santander_params)  # prime

    result = benchmark(cache.mine_cached, santander, santander_params)

    assert result.from_cache
    assert result.num_caps > 0
    assert cache.stats.hits > 0


def test_cache_speedup_shape(benchmark, santander, santander_params):
    """One timed burst of 10 interactive requests, cache enabled (9 hits)."""
    def burst():
        cache = ResultCache(Database())
        for _ in range(10):
            cache.mine_cached(santander, santander_params)
        return cache

    cache = benchmark(burst)
    assert cache.stats.hits == 9
    assert cache.stats.misses == 1

    # Out-of-band speedup measurement for the printed table.
    cold_cache = ResultCache(Database())
    t0 = time.perf_counter()
    cold_cache.mine_cached(santander, santander_params)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold_cache.mine_cached(santander, santander_params)
    warm = time.perf_counter() - t0
    print_table(
        "§3.3 caching — request latency",
        [
            {"case": "cold (mine)", "seconds": f"{cold:.4f}"},
            {"case": "warm (cache hit)", "seconds": f"{warm:.4f}"},
            {"case": "speedup", "seconds": f"{cold / warm:.1f}x"},
        ],
    )
    assert warm < cold, "a cache hit must be faster than re-mining"
