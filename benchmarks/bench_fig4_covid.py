"""Figure 4 — correlation pattern change before/after COVID-19.

The paper shows the CAP structure over Shanghai/Guangzhou pollutant sensors
changing across the lockdown: "our activity changes affect not only the
amounts of air pollutants but also their correlation patterns".  This bench
runs the split-mine-diff pipeline and asserts both halves of that sentence:

* amounts: traffic pollutants' mean levels drop after the split;
* patterns: traffic-pollutant CAPs vanish, background CAPs survive.
"""

from __future__ import annotations

from datetime import datetime

from repro.analysis.comparison import compare_periods
from repro.data.datasets import recommended_parameters

from .conftest import print_table

LOCKDOWN = datetime(2020, 1, 23)
TRAFFIC = {"no2", "co", "pm25", "pm10"}
BACKGROUND = {"so2", "o3"}


def test_fig4_pattern_change(benchmark, covid19):
    params = recommended_parameters("covid19")

    comparison = benchmark(compare_periods, covid19, LOCKDOWN, params)

    summary = comparison.summary()
    print_table(
        "Fig. 4 — CAP sets before/after the lockdown",
        [
            {"period": "before", "caps": summary["caps_before"]},
            {"period": "after", "caps": summary["caps_after"]},
            {"period": "vanished", "caps": summary["vanished"]},
            {"period": "appeared", "caps": summary["appeared"]},
            {"period": "survived", "caps": summary["survived"]},
        ],
    )
    print_table(
        "Fig. 4 — attribute level shifts (after − before)",
        [
            {"attribute": a, "shift": f"{v:+.2f}"}
            for a, v in sorted(summary["level_shifts"].items())
        ],
    )

    # Patterns change, and in the direction the paper shows: the richer
    # before-structure collapses.
    assert comparison.before.num_caps > comparison.after.num_caps
    assert comparison.vanished

    # Every vanished pattern touches a traffic pollutant; every surviving
    # after-pattern is background-only.
    vanished_traffic = [c for c in comparison.vanished if c.attributes & TRAFFIC]
    assert vanished_traffic, "traffic-pollutant patterns should vanish"
    for cap in comparison.after.caps:
        assert cap.attributes <= BACKGROUND, (
            f"after-lockdown CAP unexpectedly involves traffic pollutants: "
            f"{sorted(cap.attributes)}"
        )

    # Amounts drop for traffic pollutants.
    shifts = comparison.level_shifts()
    assert shifts["no2"] < 0 and shifts["pm10"] < 0
