"""WAL store engine — per-transition overhead collapse and compaction cost.

The ISSUE-6 claim in numbers: PR 5's durability rode snapshot-per-write —
every persisted transition re-serialized the *whole* database (7–11 ms per
job in ``BENCH_durable_jobs.json``, degrading linearly with store size).
The WAL engine appends one checksummed, fsync'd record instead, so a
transition costs the record — not the world:

* **per-transition overhead** — one indexed ``update_one`` on a store
  preloaded with a realistic document population, measured on the memory
  engine (floor), the WAL engine (append + fsync), and the snapshot
  engine with a ``save()`` per mutation (PR 5's durable semantics);
* **compaction cost vs log length** — ``compact_collection`` on logs of
  growing record counts: the price of folding history back to live state,
  and the bytes it reclaims.

Numbers land in ``BENCH_wal_store.json`` (CI's bench lane uploads it).
The acceptance bar is explicit: WAL per-transition cost must undercut the
snapshot engine's by ≥10x, or the engine rewrite bought nothing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.store.database import Database

from .conftest import machine_info, print_table

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wal_store.json"

#: Documents already in the store when transitions are measured — the
#: snapshot engine's cost scales with this; the WAL engine's must not.
PRELOAD_DOCS = 300
TRANSITIONS = 120
COMPACTION_LOG_LENGTHS = (200, 800, 3200)

#: The engine rewrite's reason to exist (ISSUE-6 acceptance criterion).
MIN_COLLAPSE_X = 10.0


def _preload(database: Database):
    jobs = database["jobs"]
    jobs.create_index("job_id", "hash")
    for index in range(PRELOAD_DOCS):
        jobs.insert_one({
            "job_id": f"seed-{index}",
            "state": "succeeded",
            "payload": {
                "dataset": "santander",
                "params": {"min_support": 5, "distance_threshold": 500.0},
            },
            "progress": 1.0,
        })
    return jobs


def _transition_ms(jobs, save=None) -> float:
    start = time.perf_counter()
    for index in range(TRANSITIONS):
        jobs.update_one({"job_id": f"seed-{index}"}, {"state": "running"})
        if save is not None:
            save()
    return (time.perf_counter() - start) / TRANSITIONS * 1000.0


def test_wal_transition_collapse_and_compaction(tmp_path):
    memory_jobs = _preload(Database())
    memory_ms = _transition_ms(memory_jobs)

    snapshot_db = Database(tmp_path / "snap.json", engine="snapshot")
    snapshot_jobs = _preload(snapshot_db)
    snapshot_db.save()
    # PR 5 semantics: every persisted transition rewrites the snapshot.
    snapshot_ms = _transition_ms(snapshot_jobs, save=snapshot_db.save)

    wal_db = Database(tmp_path / "wal.json")
    wal_jobs = _preload(wal_db)
    wal_ms = _transition_ms(wal_jobs)

    collapse_x = snapshot_ms / wal_ms
    rows = [
        {"engine": "memory (no durability)", "ms_per_transition": round(memory_ms, 4)},
        {"engine": "wal (append + fsync)", "ms_per_transition": round(wal_ms, 4)},
        {"engine": "snapshot (save per write)", "ms_per_transition": round(snapshot_ms, 4)},
    ]
    print_table(f"store transition cost ({PRELOAD_DOCS} preloaded docs)", rows)
    print(f"  snapshot/wal collapse: {collapse_x:.1f}x "
          f"(acceptance bar: >= {MIN_COLLAPSE_X:.0f}x)")

    # Durability must cost more than memory, and the WAL must collapse the
    # snapshot engine's per-transition price by at least the ISSUE-6 bar.
    assert wal_ms > memory_ms
    assert collapse_x >= MIN_COLLAPSE_X

    # -- compaction cost vs log length ----------------------------------------
    compaction_rows = []
    for length in COMPACTION_LOG_LENGTHS:
        database = Database(tmp_path / f"compact-{length}.json")
        collection = database["jobs"]
        doc_id = collection.insert_one({"state": "queued"})
        for index in range(length - 1):
            collection.update_one({"_id": doc_id}, {"state": f"step-{index}"})
        live_state = collection.find()

        start = time.perf_counter()
        result = database.compact_collection("jobs")
        compact_ms = (time.perf_counter() - start) * 1000.0

        assert result["compacted"]
        assert collection.find() == live_state  # folding history is lossless
        reopened = Database(tmp_path / f"compact-{length}.json")
        assert reopened["jobs"].find() == live_state

        compaction_rows.append({
            "log_records": length,
            "compact_ms": round(compact_ms, 3),
            "before_bytes": result["before_bytes"],
            "after_bytes": result["after_bytes"],
        })
    print_table("compaction cost vs log length", compaction_rows)

    REPORT_PATH.write_text(json.dumps({
        "benchmark": "bench_wal_store",
        "machine": machine_info(),
        "timed_region": "document transitions per engine + compaction",
        "preloaded_documents": PRELOAD_DOCS,
        "transitions": TRANSITIONS,
        "memory_ms_per_transition": memory_ms,
        "wal_ms_per_transition": wal_ms,
        "snapshot_ms_per_transition": snapshot_ms,
        "snapshot_over_wal_collapse_x": collapse_x,
        "compaction": compaction_rows,
    }, indent=2) + "\n")
